package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the driver
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *listedError
}

type listedError struct {
	Err string
}

// Options tunes one Run of the suite.
type Options struct {
	// StrictDirectives reports //lint:helmvet-ignore directives that
	// name an analyzer excluded from this run as dead: such a
	// directive suppresses nothing and rots silently otherwise.
	StrictDirectives bool
	// IncludeIgnored keeps directive-suppressed findings in the result,
	// marked Ignored, instead of dropping them.
	IncludeIgnored bool
}

// Run loads the packages matched by patterns (relative to dir), runs
// every analyzer over each, applies //lint:helmvet-ignore directives,
// and returns the surviving findings sorted by position. Test files
// are included: in-package _test.go files are analyzed together with
// the package, external _test packages separately.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunOpts(dir, patterns, analyzers, Options{})
}

// RunOpts is Run with explicit Options.
func RunOpts(dir string, patterns []string, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	targets := selectTargets(pkgs)
	if len(targets) == 0 {
		return nil, fmt.Errorf("helmvet: no packages match %v", patterns)
	}
	byPath := make(map[string]*listedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	ld := &loader{byPath: byPath, cache: make(map[string]*checkedPackage)}
	facts := newFactStore()
	// Fact phase: walk every in-module source package bottom-up so an
	// analyzer inspecting a package can import facts about everything
	// it depends on, whether or not the dependency was itself a target.
	if hasFactRuns(analyzers) {
		for _, lp := range factOrder(pkgs) {
			cp, err := ld.check(lp)
			if err != nil {
				return nil, err
			}
			facts.setExportKey(lp.ImportPath, lp.Export)
			for _, a := range analyzers {
				if a.FactRun == nil {
					continue
				}
				pass := cp.newPass(a, facts, func(Diagnostic) {})
				if err := a.FactRun(pass); err != nil {
					return nil, fmt.Errorf("helmvet: %s facts on %s: %v", a.Name, lp.ImportPath, err)
				}
			}
		}
	}
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	absDir, _ := filepath.Abs(dir)
	var diags []Diagnostic
	for _, lp := range targets {
		ds, err := analyzePackage(ld, lp, analyzers, enabled, facts, opts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(absDir, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func hasFactRuns(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if a.FactRun != nil {
			return true
		}
	}
	return false
}

// goList shells out to `go list -export -deps -test` so every
// dependency arrives with compiled export data; the target packages
// themselves are then typechecked from source.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=Dir,ImportPath,Name,ForTest,Export,GoFiles,Imports,DepOnly,Standard,ImportMap,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("helmvet: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("helmvet: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// selectTargets picks the packages to analyze from a -deps -test
// listing: everything matched by the patterns, with a package's
// in-package test variant (which carries its _test.go files alongside
// the regular ones) superseding the plain package, and the synthesized
// ".test" mains dropped.
func selectTargets(pkgs []*listedPackage) []*listedPackage {
	hasTestVariant := make(map[string]bool)
	for _, p := range pkgs {
		if !p.DepOnly && p.ForTest != "" && !strings.HasSuffix(p.Name, "_test") && !strings.HasSuffix(p.ImportPath, ".test") {
			hasTestVariant[p.ForTest] = true
		}
	}
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.ForTest == "" && hasTestVariant[p.ImportPath] {
			continue
		}
		targets = append(targets, p)
	}
	return targets
}

// factOrder returns every in-module source package — targets and
// in-module dependencies alike, plain variants only — topologically
// sorted so imports precede importers. The module carries no external
// dependencies, so "non-standard with source" is "in-module".
func factOrder(pkgs []*listedPackage) []*listedPackage {
	inModule := make(map[string]*listedPackage)
	for _, p := range pkgs {
		if p.Standard || p.Error != nil || len(p.GoFiles) == 0 {
			continue
		}
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		inModule[p.ImportPath] = p
	}
	var order []*listedPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		p := inModule[path]
		if p == nil || state[path] != 0 {
			return
		}
		state[path] = 1
		for _, imp := range p.Imports {
			visit(imp)
		}
		state[path] = 2
		order = append(order, p)
	}
	// Deterministic root order.
	paths := make([]string, 0, len(inModule))
	for path := range inModule {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		visit(path)
	}
	return order
}

// checkedPackage is one parsed and typechecked package, reused between
// the fact and reporting phases.
type checkedPackage struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (cp *checkedPackage) newPass(a *Analyzer, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      cp.fset,
		Files:     cp.files,
		Pkg:       cp.pkg,
		TypesInfo: cp.info,
		Facts:     facts,
		report:    report,
	}
}

// loader parses and typechecks listed packages from source, memoized
// by (bracketed) import path.
type loader struct {
	byPath map[string]*listedPackage
	cache  map[string]*checkedPackage
}

func (ld *loader) check(lp *listedPackage) (*checkedPackage, error) {
	if lp.Error != nil {
		return nil, fmt.Errorf("helmvet: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	if cp, ok := ld.cache[lp.ImportPath]; ok {
		return cp, nil
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("helmvet: %v", err)
		}
		files = append(files, f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: newExportImporter(fset, ld.byPath, lp.ImportMap),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("helmvet: typechecking %s: %v", lp.ImportPath, typeErrs[0])
	}
	cp := &checkedPackage{fset: fset, files: files, pkg: pkg, info: info}
	ld.cache[lp.ImportPath] = cp
	return cp, nil
}

// analyzePackage runs the analyzers over one target package, applying
// ignore directives: suppressed findings are dropped (or kept, marked
// Ignored), malformed or — under StrictDirectives — dead directives
// are findings of their own.
func analyzePackage(ld *loader, lp *listedPackage, analyzers []*Analyzer, enabled map[string]bool, facts *FactStore, opts Options) ([]Diagnostic, error) {
	cp, err := ld.check(lp)
	if err != nil {
		return nil, err
	}
	dirs, diags := parseDirectives(cp.fset, cp.files, enabled, opts.StrictDirectives)
	for _, a := range analyzers {
		pass := cp.newPass(a, facts, func(d Diagnostic) {
			if dirs.suppresses(d) {
				if opts.IncludeIgnored {
					d.Ignored = true
					diags = append(diags, d)
				}
				return
			}
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("helmvet: %s on %s: %v", a.Name, lp.ImportPath, err)
		}
	}
	return diags, nil
}

// exportImporter resolves imports of the package under analysis from
// the gc export data `go list -export` produced, honoring the
// package's ImportMap (vendor and test-variant remappings).
type exportImporter struct {
	inner types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, byPath map[string]*listedPackage, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		lp := byPath[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	return exportImporter{inner: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
}

func (i exportImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i exportImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.inner.ImportFrom(path, srcDir, mode)
}

func isTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}
