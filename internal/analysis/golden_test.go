package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runGolden runs one analyzer over testdata/src/<dir> packages and
// checks the findings against `// want "regex"` comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest: every
// diagnostic must match a want on its exact file and line, and every
// want must be consumed by exactly one diagnostic. Lines without a
// want comment are the allowed patterns — any finding there fails the
// test.
func runGolden(t *testing.T, az *Analyzer, dirs ...string) {
	t.Helper()
	var patterns []string
	for _, d := range dirs {
		patterns = append(patterns, "./testdata/src/"+d)
	}
	diags, err := Run(".", patterns, []*Analyzer{az})
	if err != nil {
		t.Fatalf("Run(%v): %v", patterns, err)
	}
	wants := collectWants(t, dirs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.ToSlash(d.Pos.Filename), d.Pos.Line)
		ws := wants[key]
		matched := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.+)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans the golden sources for want comments, keyed by
// "file:line" with the file path as Run reports it (relative to the
// package dir of this test).
func collectWants(t *testing.T, dirs []string) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, dir := range dirs {
		root := filepath.Join("testdata", "src", dir)
		entries, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(root, e.Name())
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				m := wantRE.FindStringSubmatch(sc.Text())
				if m == nil {
					continue
				}
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment", path, line)
				}
				key := fmt.Sprintf("%s:%d", filepath.ToSlash(path), line)
				for _, a := range args {
					wants[key] = append(wants[key], &want{re: regexp.MustCompile(a[1])})
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	return wants
}
