package analysis

import (
	"go/types"
)

// The fact store is the flow layer's cross-package half: an analyzer
// that learns something about an exported object while analyzing its
// defining package — "this function's result aliases an mmap view" —
// records it here, and the analyzers running later over dependent
// packages read it back. Facts are keyed the way gc export data names
// objects (defining package import path + the function's full name),
// so a fact survives the switch between a package's plain and
// in-package-test variants, which compile the same objects under the
// same export-data identity. The driver computes facts bottom-up: Run
// analyzes in-module packages in dependency order, so by the time a
// package is inspected, facts for everything it imports exist.
//
// The store is deliberately small: boolean object facts only, no
// package facts, no serialization — it lives for one Run.

type factKey struct {
	pkg  string // defining package import path, as export data names it
	obj  string // types.Func FullName / types.Object Id
	kind string // fact name, e.g. "mmapview"
}

// A FactStore accumulates object facts across one Run.
type FactStore struct {
	m map[factKey]bool
	// exportKey maps an import path to the export-data file the fact
	// was computed against, recording what identity "this package"
	// had when its facts were written.
	exportKey map[string]string
}

func newFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]bool), exportKey: make(map[string]string)}
}

func objKey(obj types.Object, kind string) (factKey, bool) {
	if obj == nil || obj.Pkg() == nil {
		return factKey{}, false
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		name = fn.FullName()
	}
	return factKey{pkg: obj.Pkg().Path(), obj: name, kind: kind}, true
}

// ExportObjectFact records a boolean fact about obj.
func (s *FactStore) ExportObjectFact(obj types.Object, kind string) {
	if s == nil {
		return
	}
	if k, ok := objKey(obj, kind); ok {
		s.m[k] = true
	}
}

// ImportObjectFact reports whether a fact of the given kind was
// recorded for obj — by this package's own pass or by the pass over
// the defining package earlier in dependency order.
func (s *FactStore) ImportObjectFact(obj types.Object, kind string) bool {
	if s == nil {
		return false
	}
	k, ok := objKey(obj, kind)
	return ok && s.m[k]
}

// setExportKey records which export data a package's facts came from.
func (s *FactStore) setExportKey(pkgPath, export string) {
	if s != nil {
		s.exportKey[pkgPath] = export
	}
}
