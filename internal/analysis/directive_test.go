package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// TestDirectiveMalformed checks that a directive missing its analyzer
// or reason, or naming an unknown analyzer, is itself a finding — a
// typo must not silently disable a check.
func TestDirectiveMalformed(t *testing.T) {
	cases := []struct {
		name, comment, wantMsg string
	}{
		{"no analyzer", "//lint:helmvet-ignore", "names no analyzer"},
		{"unknown analyzer", "//lint:helmvet-ignore nosuchcheck stale name", "unknown analyzer nosuchcheck"},
		{"missing reason", "//lint:helmvet-ignore determinism", "missing a reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, files := parseOne(t, "package p\n\n"+tc.comment+"\nvar X int\n")
			_, diags := parseDirectives(fset, files, nil, false)
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
			}
			if !strings.Contains(diags[0].Message, tc.wantMsg) {
				t.Errorf("diagnostic %q does not mention %q", diags[0].Message, tc.wantMsg)
			}
			if diags[0].Analyzer != "helmvet" {
				t.Errorf("malformed-directive diagnostic attributed to %q, want helmvet", diags[0].Analyzer)
			}
		})
	}
}

// TestDirectiveDead checks strict mode: a well-formed directive naming
// an analyzer excluded from this run is reported as dead, but only
// under strict, never for "all", and never when the analyzer runs.
func TestDirectiveDead(t *testing.T) {
	src := "package p\n\n//lint:helmvet-ignore determinism seam\nvar a int\n\n//lint:helmvet-ignore all seam\nvar b int\n"
	fset, files := parseOne(t, src)
	enabled := map[string]bool{"ctxflow": true}
	_, diags := parseDirectives(fset, files, enabled, true)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "dead: analyzer determinism") {
		t.Fatalf("strict run over disabled analyzer: got %v, want one dead-directive finding", diags)
	}
	if _, diags := parseDirectives(fset, files, enabled, false); len(diags) != 0 {
		t.Fatalf("non-strict run reported dead directives: %v", diags)
	}
	if _, diags := parseDirectives(fset, files, map[string]bool{"determinism": true}, true); len(diags) != 0 {
		t.Fatalf("strict run with analyzer enabled reported: %v", diags)
	}
}

// TestDirectiveSuppression checks the line rules: a directive covers
// its own line and the line directly below, for the named analyzer
// (or all), and nothing else.
func TestDirectiveSuppression(t *testing.T) {
	src := `package p

//lint:helmvet-ignore determinism seam
var a int

//lint:helmvet-ignore all seam
var b int
`
	fset, files := parseOne(t, src)
	set, diags := parseDirectives(fset, files, nil, false)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	mk := func(analyzer string, line int) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "dir_test_src.go", Line: line}}
	}
	for _, tc := range []struct {
		name string
		d    Diagnostic
		want bool
	}{
		{"named analyzer, line below", mk("determinism", 4), true},
		{"named analyzer, directive line", mk("determinism", 3), true},
		{"other analyzer not covered", mk("ctxflow", 4), false},
		{"two lines below not covered", mk("determinism", 5), false},
		{"all covers any analyzer", mk("ctxflow", 7), true},
		{"other file not covered", Diagnostic{Analyzer: "determinism", Pos: token.Position{Filename: "other.go", Line: 4}}, false},
	} {
		if got := set.suppresses(tc.d); got != tc.want {
			t.Errorf("%s: suppresses = %v, want %v", tc.name, got, tc.want)
		}
	}
}
