package kvcache

import (
	"testing"
	"testing/quick"

	"helmsim/internal/model"
	"helmsim/internal/units"
)

func pagedFor(t *testing.T, budgetGB int) *PagedCache {
	t.Helper()
	p, err := NewPagedCache(model.OPT175B(), units.Bytes(budgetGB)*units.GB, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPagedCacheValidation(t *testing.T) {
	if _, err := NewPagedCache(model.Config{}, units.GB, 16); err == nil {
		t.Errorf("invalid config accepted")
	}
	if _, err := NewPagedCache(model.OPT175B(), -1, 16); err == nil {
		t.Errorf("negative budget accepted")
	}
	if _, err := NewPagedCache(model.OPT175B(), units.GB, 0); err == nil {
		t.Errorf("zero page size accepted")
	}
}

func TestPagedLifecycle(t *testing.T) {
	p := pagedFor(t, 30)
	if err := p.Admit(1, 128); err != nil {
		t.Fatal(err)
	}
	// 128 tokens at page size 16 = exactly 8 pages.
	if used := p.TotalPages() - p.FreePages(); used != 8 {
		t.Errorf("pages used = %d, want 8", used)
	}
	// No waste on an exact boundary.
	if f := p.InternalFragmentation(); f != 0 {
		t.Errorf("fragmentation = %v on exact fit", f)
	}
	// One more token takes a fresh page with 15 wasted slots.
	if err := p.Append(1); err != nil {
		t.Fatal(err)
	}
	if used := p.TotalPages() - p.FreePages(); used != 9 {
		t.Errorf("pages used = %d after append, want 9", used)
	}
	if f := p.InternalFragmentation(); f <= 0 || f > 15.0/144 {
		t.Errorf("fragmentation = %v, want (0, 15/144]", f)
	}
	// 15 more appends stay within the same page.
	for i := 0; i < 15; i++ {
		if err := p.Append(1); err != nil {
			t.Fatal(err)
		}
	}
	if used := p.TotalPages() - p.FreePages(); used != 9 {
		t.Errorf("pages used = %d after filling the page, want 9", used)
	}
	if err := p.Release(1); err != nil {
		t.Fatal(err)
	}
	if p.FreePages() != p.TotalPages() || p.Len() != 0 || p.UsedBytes() != 0 {
		t.Errorf("release did not return pages")
	}
	// Error paths.
	if err := p.Admit(2, 0); err == nil {
		t.Errorf("zero-token admit accepted")
	}
	if err := p.Append(42); err == nil {
		t.Errorf("unknown append accepted")
	}
	if err := p.Release(42); err == nil {
		t.Errorf("unknown release accepted")
	}
	if err := p.Admit(3, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(3, 10); err == nil {
		t.Errorf("duplicate admit accepted")
	}
}

func TestPagedExhaustion(t *testing.T) {
	// A tiny budget: enough for one page only.
	cfg := model.OPT175B()
	page := cfg.KVBytesPerPromptPerBlock(16) * units.Bytes(cfg.Blocks)
	p, err := NewPagedCache(cfg, page, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Admit(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(1); err == nil {
		t.Errorf("append beyond the budget accepted")
	}
	if err := p.Admit(2, 1); err == nil {
		t.Errorf("admit beyond the budget accepted")
	}
}

// PagedAttention's headroom (related work [63]): at admission, paged
// allocation commits only the prompt's pages, so it admits ~16% more
// OPT-175B prompts than the contiguous prompt+generation reservation
// (128 vs 149 tokens committed).
func TestPagedAdmitsMoreThanReservation(t *testing.T) {
	cfg := model.OPT175B()
	budget := 33 * units.GB
	paged, err := MaxBatchPaged(cfg, 128, 16, budget)
	if err != nil {
		t.Fatal(err)
	}
	reserve := int(budget / PerPromptBytes(cfg, 128, 21))
	if paged <= reserve {
		t.Errorf("paged admits %d, reservation %d — paged should admit more", paged, reserve)
	}
	if float64(paged)/float64(reserve) > 1.35 {
		t.Errorf("paged headroom %.2fx implausibly large", float64(paged)/float64(reserve))
	}
	if _, err := MaxBatchPaged(cfg, 0, 16, budget); err == nil {
		t.Errorf("zero prompt length accepted")
	}
}

// Property: pages never leak — after any admit/append/release sequence,
// releasing the survivors restores every page.
func TestPagedConservationProperty(t *testing.T) {
	cfg := model.OPT1B3()
	f := func(ops []uint8) bool {
		p, err := NewPagedCache(cfg, 2*units.GB, 16)
		if err != nil {
			return false
		}
		live := map[int]bool{}
		for i, op := range ops {
			id := i % 8
			switch op % 3 {
			case 0:
				if !live[id] && p.Admit(id, int(op)%40+1) == nil {
					live[id] = true
				}
			case 1:
				if live[id] {
					_ = p.Append(id)
				}
			case 2:
				if live[id] {
					if p.Release(id) != nil {
						return false
					}
					delete(live, id)
				}
			}
			if p.FreePages() < 0 || p.FreePages() > p.TotalPages() {
				return false
			}
			if f := p.InternalFragmentation(); f < 0 || f >= 1 {
				return false
			}
		}
		for id := range live {
			if p.Release(id) != nil {
				return false
			}
		}
		return p.FreePages() == p.TotalPages() && p.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
