package kvcache

import (
	"container/list"
	"encoding/binary"
	"fmt"

	"helmsim/internal/model"
)

// Pool is the real paged KV cache: block-granular storage of K/V rows
// in fixed-size pages, with a page table per sequence — PagedCache
// grown from a cost model into the engine's actual memory. One
// physical page ID addresses pageTokens rows in every decoder block's
// slab (all blocks of a sequence advance in lockstep, so one page
// table serves them all), memory is committed by actual context
// instead of a worst-case reservation, and pages holding a common
// prompt prefix are refcount-shared between sequences: a new request
// whose prompt starts with an already-cached prefix skips recomputing
// those positions entirely, and copy-on-write preserves isolation if
// it ever has to write into a shared page. Released prefixes stay in
// an LRU index and are evicted only under page pressure, so multi-turn
// chat keeps hitting the cache after the first turn completes.
//
// The Pool is not safe for concurrent use; the continuous batcher owns
// it from a single goroutine.
type Pool struct {
	cfg        model.Config
	width      int // K/V row width (grouped-query aware)
	pageTokens int
	totalPages int
	free       []int   // free page IDs, LIFO
	refs       []int   // per-page reference count (sequences + prefix entries)
	k, v       [][]row // [block][page] -> flat rows, allocated lazily
	seqs       map[int]*poolSeq
	released   map[int]bool
	poisoned   bool

	prefix  map[string]*list.Element // key -> element holding *prefixEntry
	lru     *list.List               // oldest at front; nil when prefix reuse is off
	entries int

	lookups      int
	hits         int
	sharedTokens int
	cowCopies    int
	evictions    int
}

// row is one page's flat storage: pageTokens rows of width floats.
type row []float32

// poolSeq is one sequence's page table.
type poolSeq struct {
	prompt []int // the admitted prompt, kept for prefix registration
	pages  []int
	shared int // tokens covered by prefix reuse at admission (stats)
}

// prefixEntry is one registered prompt prefix: the pages holding its
// KV, each holding one reference.
type prefixEntry struct {
	key   string
	pages []int
}

// NewPool builds a paged KV pool of totalPages pages of pageTokens
// positions each. prefixReuse enables the shared-prefix index.
func NewPool(cfg model.Config, totalPages, pageTokens int, prefixReuse bool) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if totalPages <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive page count %d", totalPages)
	}
	if pageTokens <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive page size %d", pageTokens)
	}
	p := &Pool{
		cfg:        cfg,
		width:      cfg.KVWidth(),
		pageTokens: pageTokens,
		totalPages: totalPages,
		free:       make([]int, 0, totalPages),
		refs:       make([]int, totalPages),
		k:          make([][]row, cfg.Blocks),
		v:          make([][]row, cfg.Blocks),
		seqs:       make(map[int]*poolSeq),
		released:   make(map[int]bool),
	}
	for b := range p.k {
		p.k[b] = make([]row, totalPages)
		p.v[b] = make([]row, totalPages)
	}
	// LIFO free list seeded so pages come out 0, 1, 2, ... — allocation
	// order is deterministic and test-friendly.
	for id := totalPages - 1; id >= 0; id-- {
		p.free = append(p.free, id)
	}
	if prefixReuse {
		p.prefix = make(map[string]*list.Element)
		p.lru = list.New()
	}
	return p, nil
}

// PagesFor is the page count covering n tokens.
func (p *Pool) PagesFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.pageTokens - 1) / p.pageTokens
}

// FreePages reports immediately allocatable pages (not counting what
// evicting cached prefixes could reclaim).
func (p *Pool) FreePages() int { return len(p.free) }

// TotalPages reports the pool size.
func (p *Pool) TotalPages() int { return p.totalPages }

// PageTokens reports the page granularity.
func (p *Pool) PageTokens() int { return p.pageTokens }

// Len reports admitted sequences.
func (p *Pool) Len() int { return len(p.seqs) }

// prefixKey encodes a token prefix as a map key.
func prefixKey(tokens []int) string {
	b := make([]byte, 8*len(tokens))
	for i, t := range tokens {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(t))
	}
	return string(b)
}

// alloc takes a free page, evicting cached prefixes (oldest first)
// under pressure. The caller owns the page's single reference.
func (p *Pool) alloc() (int, error) {
	for len(p.free) == 0 {
		if !p.evictOldest() {
			return 0, fmt.Errorf("%w: %d pages, all referenced", ErrOutOfPages, p.totalPages)
		}
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.refs[id] = 1
	for b := 0; b < p.cfg.Blocks; b++ {
		if p.k[b][id] == nil {
			p.k[b][id] = make(row, p.pageTokens*p.width)
			p.v[b][id] = make(row, p.pageTokens*p.width)
		}
	}
	return id, nil
}

// deref drops one reference, returning the page to the free list at
// zero.
func (p *Pool) deref(id int) {
	p.refs[id]--
	if p.refs[id] == 0 {
		p.free = append(p.free, id)
	}
}

// evictOldest drops the least-recently-used prefix entry; it reports
// whether an entry was evicted (pages only free if no sequence still
// shares them, so the caller loops).
func (p *Pool) evictOldest() bool {
	if p.lru == nil || p.lru.Len() == 0 {
		return false
	}
	el := p.lru.Front()
	e := el.Value.(*prefixEntry)
	p.lru.Remove(el)
	delete(p.prefix, e.key)
	p.entries--
	for _, pg := range e.pages {
		p.deref(pg)
	}
	p.evictions++
	return true
}

// Admit registers a sequence for the given prompt and returns how many
// leading positions its KV cache already covers via prefix reuse — the
// caller prefills only prompt[shared:]. No pages are allocated for the
// unshared part yet; they are taken lazily as rows are appended.
func (p *Pool) Admit(id int, prompt []int) (shared int, err error) {
	if p.poisoned {
		return 0, fmt.Errorf("%w: refusing to admit sequence %d", ErrPoisoned, id)
	}
	if len(prompt) == 0 {
		return 0, fmt.Errorf("kvcache: empty prompt for sequence %d", id)
	}
	if len(prompt) > p.cfg.MaxSeq {
		return 0, fmt.Errorf("kvcache: prompt length %d exceeds model max sequence %d", len(prompt), p.cfg.MaxSeq)
	}
	if _, ok := p.seqs[id]; ok {
		return 0, fmt.Errorf("kvcache: sequence %d already admitted", id)
	}
	s := &poolSeq{prompt: append([]int(nil), prompt...)}
	if p.prefix != nil {
		p.lookups++
		// Longest registered full-page prefix of this prompt. At least
		// one prompt position must remain to prefill (the engine needs
		// the last position's logits to sample), so a whole-prompt hit
		// leaves the final position to recompute — its append lands in
		// a shared page and copy-on-write takes over.
		for kPages := len(prompt) / p.pageTokens; kPages >= 1; kPages-- {
			el, ok := p.prefix[prefixKey(prompt[:kPages*p.pageTokens])]
			if !ok {
				continue
			}
			e := el.Value.(*prefixEntry)
			s.pages = append(s.pages, e.pages...)
			for _, pg := range e.pages {
				p.refs[pg]++
			}
			shared = kPages * p.pageTokens
			if shared > len(prompt)-1 {
				shared = len(prompt) - 1
			}
			s.shared = shared
			p.hits++
			p.sharedTokens += shared
			p.lru.MoveToBack(el)
			break
		}
	}
	p.seqs[id] = s
	delete(p.released, id)
	return shared, nil
}

// RegisterPrefix publishes a sequence's prompt pages into the prefix
// index (one entry per full-page boundary), so later prompts sharing
// the prefix skip recomputation. Call it once the prompt is fully
// prefilled; it is a no-op when prefix reuse is off.
func (p *Pool) RegisterPrefix(id int) error {
	s, ok := p.seqs[id]
	if !ok {
		return p.unknown(id)
	}
	if p.prefix == nil {
		return nil
	}
	full := len(s.prompt) / p.pageTokens
	if full > len(s.pages) {
		return fmt.Errorf("kvcache: sequence %d has %d pages, prompt needs %d — prefill incomplete", id, len(s.pages), full)
	}
	for kPages := 1; kPages <= full; kPages++ {
		key := prefixKey(s.prompt[:kPages*p.pageTokens])
		if el, ok := p.prefix[key]; ok {
			p.lru.MoveToBack(el)
			continue
		}
		e := &prefixEntry{key: key, pages: append([]int(nil), s.pages[:kPages]...)}
		for _, pg := range e.pages {
			p.refs[pg]++
		}
		p.prefix[key] = p.lru.PushBack(e)
		p.entries++
	}
	return nil
}

// writeRow stores one position's K and V rows for one block,
// allocating the page on a boundary and copying a shared page before
// the first write into it (copy-on-write).
func (p *Pool) writeRow(id, blk, pos int, kRow, vRow []float32) error {
	s, ok := p.seqs[id]
	if !ok {
		return p.unknown(id)
	}
	if pos >= p.cfg.MaxSeq {
		return fmt.Errorf("kvcache: sequence %d position %d exceeds model max sequence %d", id, pos, p.cfg.MaxSeq)
	}
	if len(kRow) != p.width || len(vRow) != p.width {
		return fmt.Errorf("kvcache: sequence %d row width %d/%d, want %d", id, len(kRow), len(vRow), p.width)
	}
	idx, off := pos/p.pageTokens, pos%p.pageTokens
	switch {
	case idx == len(s.pages):
		pg, err := p.alloc()
		if err != nil {
			return err
		}
		s.pages = append(s.pages, pg)
	case idx > len(s.pages):
		return fmt.Errorf("kvcache: sequence %d write at position %d skips pages (%d cached)", id, pos, len(s.pages))
	}
	pg := s.pages[idx]
	if p.refs[pg] > 1 {
		// Copy-on-write: the page is shared (a prefix another sequence
		// or the index still references); writing would corrupt their
		// view. Copy the rows below the write point — for every block,
		// since one physical page spans all block slabs — then retarget
		// this sequence's table at the private copy.
		np, err := p.alloc()
		if err != nil {
			return err
		}
		for b := 0; b < p.cfg.Blocks; b++ {
			copy(p.k[b][np][:off*p.width], p.k[b][pg][:off*p.width])
			copy(p.v[b][np][:off*p.width], p.v[b][pg][:off*p.width])
		}
		p.deref(pg)
		s.pages[idx] = np
		pg = np
		p.cowCopies++
	}
	copy(p.k[blk][pg][off*p.width:(off+1)*p.width], kRow)
	copy(p.v[blk][pg][off*p.width:(off+1)*p.width], vRow)
	return nil
}

// kRow and vRow return one cached position's rows for one block.
func (p *Pool) kRow(id, blk, pos int) []float32 {
	s := p.seqs[id]
	pg := s.pages[pos/p.pageTokens]
	off := pos % p.pageTokens
	return p.k[blk][pg][off*p.width : (off+1)*p.width]
}

func (p *Pool) vRow(id, blk, pos int) []float32 {
	s := p.seqs[id]
	pg := s.pages[pos/p.pageTokens]
	off := pos % p.pageTokens
	return p.v[blk][pg][off*p.width : (off+1)*p.width]
}

// Rollback trims a sequence's page table to what tokens positions
// need, freeing the tail — the pool half of a failed step's rollback
// (the per-block views truncate their row counts; this returns the
// over-allocated pages).
func (p *Pool) Rollback(id, tokens int) error {
	s, ok := p.seqs[id]
	if !ok {
		return p.unknown(id)
	}
	keep := p.PagesFor(tokens)
	for len(s.pages) > keep {
		pg := s.pages[len(s.pages)-1]
		s.pages = s.pages[:len(s.pages)-1]
		p.deref(pg)
	}
	return nil
}

// Release drops a sequence's references (shared pages survive while
// the prefix index or other sequences hold them). A second Release of
// the same ID poisons the pool: its ledger can no longer be trusted.
func (p *Pool) Release(id int) error {
	s, ok := p.seqs[id]
	if !ok {
		return p.unknown(id)
	}
	for _, pg := range s.pages {
		p.deref(pg)
	}
	delete(p.seqs, id)
	p.released[id] = true
	return nil
}

func (p *Pool) unknown(id int) error {
	if p.released[id] {
		p.poisoned = true
		return fmt.Errorf("%w: sequence %d", ErrDoubleRelease, id)
	}
	return fmt.Errorf("%w: sequence %d", ErrUnknownSequence, id)
}

// Poisoned reports whether a double release has been observed.
func (p *Pool) Poisoned() bool { return p.poisoned }

// View returns one sequence's KV view of one decoder block, rows
// [0, tokens) already valid. It satisfies infer.KVBlock structurally.
func (p *Pool) View(id, blk, tokens int) *PoolView {
	return &PoolView{pool: p, id: id, blk: blk, n: tokens}
}

// PoolView is a per-(sequence, block) window into the pool: the
// attention path appends and reads rows through it exactly as it does
// with a private contiguous cache. Each block keeps its own row count
// because blocks advance one after another within a step — mid-step,
// block b is one append ahead of block b+1.
type PoolView struct {
	pool *Pool
	id   int
	blk  int
	n    int
}

// AppendRow caches one position's K/V rows (copied into the page).
func (w *PoolView) AppendRow(k, v []float32) error {
	if err := w.pool.writeRow(w.id, w.blk, w.n, k, v); err != nil {
		return err
	}
	w.n++
	return nil
}

// KRow returns the cached K row of position p.
func (w *PoolView) KRow(p int) []float32 { return w.pool.kRow(w.id, w.blk, p) }

// VRow returns the cached V row of position p.
func (w *PoolView) VRow(p int) []float32 { return w.pool.vRow(w.id, w.blk, p) }

// Len reports cached positions.
func (w *PoolView) Len() int { return w.n }

// Truncate discards positions >= n (rollback hook).
func (w *PoolView) Truncate(n int) {
	if n >= 0 && n < w.n {
		w.n = n
	}
}

// PoolStats is a pool snapshot for /statz and benches.
type PoolStats struct {
	TotalPages int `json:"total_pages"`
	FreePages  int `json:"free_pages"`
	Seqs       int `json:"seqs"`
	// PageUtilization is the referenced fraction of the pool.
	PageUtilization float64 `json:"page_utilization"`
	// PrefixLookups/PrefixHits count Admit-time prefix-cache probes;
	// SharedTokens is how many prompt positions those hits skipped.
	PrefixLookups int `json:"prefix_lookups"`
	PrefixHits    int `json:"prefix_hits"`
	SharedTokens  int `json:"shared_tokens"`
	// PrefixEntries is the live index size.
	PrefixEntries int `json:"prefix_entries"`
	CoWCopies     int `json:"cow_copies"`
	Evictions     int `json:"evictions"`
}

// HitRate is PrefixHits/PrefixLookups (0 when nothing was probed).
func (s PoolStats) HitRate() float64 {
	if s.PrefixLookups == 0 {
		return 0
	}
	return float64(s.PrefixHits) / float64(s.PrefixLookups)
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		TotalPages:      p.totalPages,
		FreePages:       len(p.free),
		Seqs:            len(p.seqs),
		PageUtilization: float64(p.totalPages-len(p.free)) / float64(p.totalPages),
		PrefixLookups:   p.lookups,
		PrefixHits:      p.hits,
		SharedTokens:    p.sharedTokens,
		PrefixEntries:   p.entries,
		CoWCopies:       p.cowCopies,
		Evictions:       p.evictions,
	}
}

// Conserved verifies the page ledger by reconstruction: every page's
// refcount equals the number of sequence tables plus prefix entries
// referencing it, pages with zero references are exactly the free
// list, and free + referenced == total. It returns nil when the ledger
// balances.
func (p *Pool) Conserved() error {
	want := make([]int, p.totalPages)
	//lint:helmvet-ignore determinism commutative refcount tally: per-page increments sum to the same counts in any visit order
	for _, s := range p.seqs {
		for _, pg := range s.pages {
			want[pg]++
		}
	}
	if p.lru != nil {
		for el := p.lru.Front(); el != nil; el = el.Next() {
			for _, pg := range el.Value.(*prefixEntry).pages {
				want[pg]++
			}
		}
	}
	onFree := make([]bool, p.totalPages)
	for _, pg := range p.free {
		if pg < 0 || pg >= p.totalPages {
			return fmt.Errorf("kvcache: free list holds invalid page %d", pg)
		}
		if onFree[pg] {
			return fmt.Errorf("kvcache: page %d on the free list twice", pg)
		}
		onFree[pg] = true
	}
	referenced := 0
	for pg := 0; pg < p.totalPages; pg++ {
		if p.refs[pg] != want[pg] {
			return fmt.Errorf("kvcache: page %d refcount %d, reconstruction says %d", pg, p.refs[pg], want[pg])
		}
		if p.refs[pg] == 0 && !onFree[pg] {
			return fmt.Errorf("kvcache: page %d unreferenced but not free", pg)
		}
		if p.refs[pg] > 0 {
			if onFree[pg] {
				return fmt.Errorf("kvcache: page %d referenced %d times but on the free list", pg, p.refs[pg])
			}
			referenced++
		}
	}
	if len(p.free)+referenced != p.totalPages {
		return fmt.Errorf("kvcache: %d free + %d referenced != %d total", len(p.free), referenced, p.totalPages)
	}
	return nil
}
