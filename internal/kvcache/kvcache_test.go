package kvcache

import (
	"testing"
	"testing/quick"

	"helmsim/internal/calib"
	"helmsim/internal/model"
	"helmsim/internal/units"
)

func TestBudgetFree(t *testing.T) {
	b := Budget{Capacity: 40 * units.GB, WeightBytes: 30 * units.GB, StagingBytes: 5 * units.GB, Reserved: 2 * units.GB}
	if got := b.Free(); got != 3*units.GB {
		t.Errorf("Free = %v, want 3 GB", got)
	}
	over := Budget{Capacity: 10 * units.GB, WeightBytes: 20 * units.GB}
	if got := over.Free(); got != 0 {
		t.Errorf("overcommitted Free = %v, want 0", got)
	}
}

func TestMaxBatchValidation(t *testing.T) {
	cfg := model.OPT30B()
	b := DefaultBudget(0, 0)
	if _, err := MaxBatch(cfg, 0, 21, b); err == nil {
		t.Errorf("zero prompt length accepted")
	}
	if _, err := MaxBatch(cfg, 128, 0, b); err == nil {
		t.Errorf("zero gen length accepted")
	}
	if _, err := MaxBatch(model.Config{Name: "bad"}, 128, 21, b); err == nil {
		t.Errorf("invalid config accepted")
	}
}

// §V-C: freeing the GPU of weights (All-CPU) raises the OPT-175B batch cap
// roughly 5-6x relative to the baseline's weight-laden budget.
func TestMaxBatchAllCPUMultiplier(t *testing.T) {
	cfg := model.OPT175B()
	// Baseline uncompressed: the (0,80,20) achieved GPU share (~8.4%,
	// ~29.2 GB) plus the FFN double-buffer.
	ffn := cfg.Layers()[2].WeightBytes()
	w := units.Bytes(0.0837 * float64(cfg.TotalWeightBytes()))
	baseline := DefaultBudget(w, calib.StagingBufferCount*ffn)
	bBase, err := MaxBatch(cfg, calib.PromptLen, calib.GenLen, baseline)
	if err != nil {
		t.Fatal(err)
	}
	// All-CPU compressed: no GPU weights, compressed staging.
	allCPU := DefaultBudget(0, calib.StagingBufferCount*ffn*29/100)
	bAll, err := MaxBatch(cfg, calib.PromptLen, calib.GenLen, allCPU)
	if err != nil {
		t.Fatal(err)
	}
	if bBase < 6 || bBase > 10 {
		t.Errorf("baseline max batch = %d, want ~8 (§IV-B)", bBase)
	}
	if bAll < 40 || bAll > 60 {
		t.Errorf("All-CPU max batch = %d, want ~44-54 (§V-C; see EXPERIMENTS.md)", bAll)
	}
	mult := float64(bAll) / float64(bBase)
	if mult < 4.5 || mult > 8 {
		t.Errorf("All-CPU batch multiplier = %.1f, want ~5.5-7", mult)
	}
}

// §IV-B: OPT-30B runs up to batch 32. With the (0,50,50) placement (50%
// GPU share, ~30 GB) the solver's cap must admit 32 without huge slack.
func TestMaxBatchOPT30B(t *testing.T) {
	cfg := model.OPT30B()
	ffn := cfg.Layers()[2].WeightBytes()
	b := DefaultBudget(units.Bytes(0.50*float64(cfg.TotalWeightBytes())), calib.StagingBufferCount*ffn)
	got, err := MaxBatch(cfg, calib.PromptLen, calib.GenLen, b)
	if err != nil {
		t.Fatal(err)
	}
	if got < 32 || got > 45 {
		t.Errorf("OPT-30B max batch = %d, want in [32, 45] (paper runs batch 32)", got)
	}
}

func TestCacheLifecycle(t *testing.T) {
	cfg := model.OPT1B3()
	perPrompt := cfg.KVBytesPerPrompt(149)
	c, err := NewCache(cfg, 3*perPrompt)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if err := c.Admit(id, 149); err != nil {
			t.Fatalf("Admit(%d): %v", id, err)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Used() != 3*perPrompt {
		t.Errorf("Used = %v, want %v", c.Used(), 3*perPrompt)
	}
	// Budget exhausted.
	if err := c.Admit(99, 149); err == nil {
		t.Errorf("over-budget admit accepted")
	}
	// Duplicate admit.
	if err := c.Admit(0, 149); err == nil {
		t.Errorf("duplicate admit accepted")
	}
	// Extension fails at the brim, succeeds after release.
	if err := c.Extend(0); err == nil {
		t.Errorf("over-budget extend accepted")
	}
	if err := c.Release(2); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := c.Extend(0); err != nil {
		t.Errorf("Extend after release: %v", err)
	}
	if got := c.Ctx(0); got != 150 {
		t.Errorf("Ctx(0) = %d, want 150", got)
	}
	if got := c.Ctx(42); got != 0 {
		t.Errorf("Ctx(unknown) = %d, want 0", got)
	}
	// Unknown prompt operations fail.
	if err := c.Extend(42); err == nil {
		t.Errorf("extend of unknown prompt accepted")
	}
	if err := c.Release(42); err == nil {
		t.Errorf("release of unknown prompt accepted")
	}
	// Bad admissions fail.
	if err := c.Admit(7, 0); err == nil {
		t.Errorf("zero-context admit accepted")
	}
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(model.Config{}, units.GB); err == nil {
		t.Errorf("invalid config accepted")
	}
	if _, err := NewCache(model.OPT1B3(), -1); err == nil {
		t.Errorf("negative budget accepted")
	}
}

// Property: admit/extend/release conserve the used-bytes accounting — after
// releasing everything, usage returns to zero.
func TestCacheConservationProperty(t *testing.T) {
	cfg := model.OPT1B3()
	f := func(ops []uint8) bool {
		c, err := NewCache(cfg, 100*cfg.KVBytesPerPrompt(256))
		if err != nil {
			return false
		}
		live := map[int]bool{}
		for i, op := range ops {
			id := i % 10
			switch op % 3 {
			case 0:
				if !live[id] {
					if err := c.Admit(id, 16+int(op)); err == nil {
						live[id] = true
					}
				}
			case 1:
				if live[id] {
					_ = c.Extend(id)
				}
			case 2:
				if live[id] {
					if err := c.Release(id); err != nil {
						return false
					}
					delete(live, id)
				}
			}
		}
		for id := range live {
			if err := c.Release(id); err != nil {
				return false
			}
		}
		return c.Used() == 0 && c.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: MaxBatch is monotone — more GPU weights never increase the
// batch cap.
func TestMaxBatchMonotoneProperty(t *testing.T) {
	cfg := model.OPT175B()
	f := func(a, b uint8) bool {
		w1 := units.Bytes(a%40) * units.GB
		w2 := w1 + units.Bytes(b%10)*units.GB
		m1, e1 := MaxBatch(cfg, 128, 21, DefaultBudget(w1, 0))
		m2, e2 := MaxBatch(cfg, 128, 21, DefaultBudget(w2, 0))
		return e1 == nil && e2 == nil && m2 <= m1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
