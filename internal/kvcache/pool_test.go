package kvcache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"helmsim/internal/model"
)

func poolConfig() model.Config {
	return model.Config{
		Name: "pool-opt", Hidden: 32, Heads: 4, Blocks: 2,
		Vocab: 64, MaxSeq: 256, DTypeBytes: 2,
	}
}

// fillSeq appends n positions of deterministic rows to every block of a
// sequence through its views, the way the engine writes during a step.
func fillSeq(t *testing.T, p *Pool, id, from, n int) {
	t.Helper()
	w := p.cfg.KVWidth()
	for blk := 0; blk < p.cfg.Blocks; blk++ {
		v := p.View(id, blk, from)
		for pos := from; pos < from+n; pos++ {
			kr := make([]float32, w)
			vr := make([]float32, w)
			for i := range kr {
				kr[i] = float32(id*1000 + blk*100 + pos)
				vr[i] = -float32(id*1000 + blk*100 + pos)
			}
			if err := v.AppendRow(kr, vr); err != nil {
				t.Fatalf("append seq %d blk %d pos %d: %v", id, blk, pos, err)
			}
		}
	}
}

func TestPoolLifecycle(t *testing.T) {
	cfg := poolConfig()
	p, err := NewPool(cfg, 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := p.Admit(1, []int{5, 6, 7, 8, 9})
	if err != nil || shared != 0 {
		t.Fatalf("admit: shared=%d err=%v", shared, err)
	}
	fillSeq(t, p, 1, 0, 5)
	if err := p.Conserved(); err != nil {
		t.Fatalf("after fill: %v", err)
	}
	if got := p.Stats().FreePages; got != 8-2 {
		t.Fatalf("free pages after 5 tokens of page size 4: got %d, want 6", got)
	}
	// Rows read back exactly as written, across both blocks.
	for blk := 0; blk < cfg.Blocks; blk++ {
		v := p.View(1, blk, 5)
		for pos := 0; pos < 5; pos++ {
			want := float32(1*1000 + blk*100 + pos)
			if got := v.KRow(pos)[0]; got != want {
				t.Fatalf("blk %d pos %d K: got %v, want %v", blk, pos, got, want)
			}
			if got := v.VRow(pos)[0]; got != -want {
				t.Fatalf("blk %d pos %d V: got %v, want %v", blk, pos, got, -want)
			}
		}
	}
	if err := p.Release(1); err != nil {
		t.Fatal(err)
	}
	if got := p.FreePages(); got != 8 {
		t.Fatalf("free pages after release: got %d, want 8", got)
	}
	if err := p.Conserved(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolAdmitValidation(t *testing.T) {
	cfg := poolConfig()
	p, err := NewPool(cfg, 4, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(1, nil); err == nil {
		t.Fatal("empty prompt admitted")
	}
	long := make([]int, cfg.MaxSeq+1)
	if _, err := p.Admit(1, long); err == nil {
		t.Fatal("over-long prompt admitted")
	}
	if _, err := p.Admit(1, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(1, []int{1, 2}); err == nil {
		t.Fatal("duplicate ID admitted")
	}
}

func TestPoolTypedReleaseErrors(t *testing.T) {
	cfg := poolConfig()
	p, err := NewPool(cfg, 4, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Release(99); !errors.Is(err, ErrUnknownSequence) {
		t.Fatalf("unknown release: got %v, want ErrUnknownSequence", err)
	}
	if _, err := p.Admit(1, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(1); !errors.Is(err, ErrDoubleRelease) {
		t.Fatalf("double release: got %v, want ErrDoubleRelease", err)
	}
	if !p.Poisoned() {
		t.Fatal("pool not poisoned after double release")
	}
	if _, err := p.Admit(2, []int{1}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("admit after poison: got %v, want ErrPoisoned", err)
	}
	if err := p.Conserved(); err != nil {
		t.Fatalf("poisoning must not unbalance the ledger: %v", err)
	}
}

func TestPoolOutOfPages(t *testing.T) {
	cfg := poolConfig()
	p, err := NewPool(cfg, 1, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit(1, []int{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	w := cfg.KVWidth()
	kr, vr := make([]float32, w), make([]float32, w)
	v := p.View(1, 0, 0)
	for pos := 0; pos < 4; pos++ {
		if err := v.AppendRow(kr, vr); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.AppendRow(kr, vr); !errors.Is(err, ErrOutOfPages) {
		t.Fatalf("append past budget: got %v, want ErrOutOfPages", err)
	}
	if err := p.Conserved(); err != nil {
		t.Fatalf("failed alloc must not leak: %v", err)
	}
	// Rollback to the committed position returns nothing (page still
	// holds live rows) but a rollback to zero frees it.
	if err := p.Rollback(1, 4); err != nil {
		t.Fatal(err)
	}
	if p.FreePages() != 0 {
		t.Fatal("rollback to live position freed a page")
	}
	if err := p.Rollback(1, 0); err != nil {
		t.Fatal(err)
	}
	if p.FreePages() != 1 {
		t.Fatal("rollback to zero did not free the page")
	}
	if err := p.Conserved(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPrefixReuse: a second prompt sharing a full-page prefix skips
// those positions, reads identical bytes through the shared pages, and
// copy-on-write keeps the original sequence's rows intact when the
// newcomer diverges inside a shared page.
func TestPoolPrefixReuse(t *testing.T) {
	cfg := poolConfig()
	p, err := NewPool(cfg, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{10, 11, 12, 13, 14, 15, 16, 17, 18} // 9 tokens: 2 full pages
	if _, err := p.Admit(1, prompt); err != nil {
		t.Fatal(err)
	}
	fillSeq(t, p, 1, 0, len(prompt))
	if err := p.RegisterPrefix(1); err != nil {
		t.Fatal(err)
	}

	// Same first 8 tokens, divergent tail.
	prompt2 := []int{10, 11, 12, 13, 14, 15, 16, 17, 99, 98}
	shared, err := p.Admit(2, prompt2)
	if err != nil {
		t.Fatal(err)
	}
	if shared != 8 {
		t.Fatalf("shared: got %d, want 8", shared)
	}
	// The shared rows read back as sequence 1 wrote them.
	v := p.View(2, 1, shared)
	for pos := 0; pos < shared; pos++ {
		want := float32(1*1000 + 1*100 + pos)
		if got := v.KRow(pos)[0]; got != want {
			t.Fatalf("shared pos %d: got %v, want %v", pos, got, want)
		}
	}
	fillSeq(t, p, 2, shared, len(prompt2)-shared)
	if err := p.Conserved(); err != nil {
		t.Fatal(err)
	}

	// Whole-prompt hit is capped at len(prompt)-1: the engine still
	// recomputes the last position, whose append triggers CoW on the
	// shared page.
	prompt3 := append([]int(nil), prompt[:8]...)
	shared3, err := p.Admit(3, prompt3)
	if err != nil {
		t.Fatal(err)
	}
	if shared3 != 7 {
		t.Fatalf("whole-prompt hit: shared=%d, want 7", shared3)
	}
	cowBefore := p.Stats().CoWCopies
	fillSeq(t, p, 3, shared3, 1)
	if p.Stats().CoWCopies <= cowBefore {
		t.Fatal("write into shared page did not copy-on-write")
	}
	// Sequence 1's row at position 7 is untouched by sequence 3's write.
	if got, want := p.View(1, 0, 9).KRow(7)[0], float32(1*1000+7); got != want {
		t.Fatalf("CoW leaked into the shared page: got %v, want %v", got, want)
	}
	if err := p.Conserved(); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.PrefixLookups != 3 || st.PrefixHits != 2 {
		t.Fatalf("stats: lookups=%d hits=%d, want 3/2", st.PrefixLookups, st.PrefixHits)
	}
}

// TestPoolPrefixSurvivesRelease: the LRU index keeps prefix pages warm
// after the sequence that wrote them is released — the multi-turn-chat
// case — and eviction reclaims them only under pressure.
func TestPoolPrefixSurvivesRelease(t *testing.T) {
	cfg := poolConfig()
	p, err := NewPool(cfg, 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if _, err := p.Admit(1, prompt); err != nil {
		t.Fatal(err)
	}
	fillSeq(t, p, 1, 0, 8)
	if err := p.RegisterPrefix(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(1); err != nil {
		t.Fatal(err)
	}
	if p.FreePages() != 2 {
		t.Fatalf("index must pin 2 pages: free=%d", p.FreePages())
	}
	shared, err := p.Admit(2, append(append([]int(nil), prompt...), 9))
	if err != nil {
		t.Fatal(err)
	}
	if shared != 8 {
		t.Fatalf("post-release prefix hit: shared=%d, want 8", shared)
	}
	if err := p.Release(2); err != nil {
		t.Fatal(err)
	}

	// Pressure: a 16-token prompt needs all 4 pages; the index entries
	// must be evicted to satisfy it.
	big := make([]int, 16)
	for i := range big {
		big[i] = 100 + i
	}
	if _, err := p.Admit(3, big); err != nil {
		t.Fatal(err)
	}
	fillSeq(t, p, 3, 0, 16)
	if p.Stats().Evictions == 0 {
		t.Fatal("allocation under pressure did not evict the prefix index")
	}
	if err := p.Conserved(); err != nil {
		t.Fatal(err)
	}
}

// poolScript drives a Pool through a deterministic pseudo-random
// interleaving of admissions, appends, rollbacks, releases, and failure
// paths, checking the reconstructed ledger after every operation. It is
// shared by the quick.Check property and the fuzz target.
func poolScript(seed int64, ops int) error {
	cfg := poolConfig()
	p, err := NewPool(cfg, 6, 4, true)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	w := cfg.KVWidth()
	kr, vr := make([]float32, w), make([]float32, w)
	type live struct{ tokens, admitted int }
	seqs := map[int]*live{}
	nextID := 1
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0: // admit
			prompt := make([]int, rng.Intn(10)+1)
			for j := range prompt {
				prompt[j] = rng.Intn(4) // small alphabet → prefix collisions
			}
			shared, err := p.Admit(nextID, prompt)
			if err == nil {
				seqs[nextID] = &live{tokens: shared, admitted: len(prompt)}
				nextID++
			}
		case 1, 2: // append one position to every block of a random live seq
			for id, s := range seqs {
				ok := true
				for blk := 0; blk < cfg.Blocks && ok; blk++ {
					v := p.View(id, blk, s.tokens)
					if err := v.AppendRow(kr, vr); err != nil {
						// Failure mid-fan-out: roll the partial step back.
						if rbErr := p.Rollback(id, s.tokens); rbErr != nil {
							return rbErr
						}
						ok = false
					}
				}
				if ok {
					s.tokens++
					if s.tokens >= s.admitted {
						_ = p.RegisterPrefix(id)
					}
				}
				break
			}
		case 3: // release a random live seq
			for id := range seqs {
				if err := p.Release(id); err != nil {
					return err
				}
				delete(seqs, id)
				break
			}
		case 4: // failure path: release an unknown ID
			if err := p.Release(-7); !errors.Is(err, ErrUnknownSequence) {
				return err
			}
		case 5: // rollback a random live seq to a random earlier point
			for id, s := range seqs {
				n := rng.Intn(s.tokens + 1)
				if err := p.Rollback(id, n); err != nil {
					return err
				}
				if n < s.tokens {
					s.tokens = n
				}
				break
			}
		}
		if err := p.Conserved(); err != nil {
			return err
		}
	}
	return nil
}

// TestPoolLedgerConservationProperty: free + referenced == total and
// per-page refcounts reconstruct exactly, across random interleavings of
// every pool operation including failure paths.
func TestPoolLedgerConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		if err := poolScript(seed, 120); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzPoolLedger is the fuzz-driven flavor of the conservation property.
func FuzzPoolLedger(f *testing.F) {
	f.Add(int64(1), 16)
	f.Add(int64(42), 80)
	f.Add(int64(-3), 200)
	f.Fuzz(func(t *testing.T, seed int64, ops int) {
		if ops < 0 {
			ops = -ops
		}
		if ops > 300 {
			ops = ops % 300
		}
		if err := poolScript(seed, ops); err != nil {
			t.Fatalf("seed %d ops %d: %v", seed, ops, err)
		}
	})
}
