// Package kvcache manages the key/value cache of in-flight prompts and the
// GPU memory budget that caps the batch size. The budget arithmetic is the
// mechanism behind the paper's headline batch numbers: with FlexGen's
// baseline placement the GPU-resident weights squeeze the KV budget down to
// a batch of 8 for OPT-175B, while All-CPU frees the whole accelerator for
// KV and reaches 44 (§V-C).
package kvcache

import (
	"fmt"

	"helmsim/internal/calib"
	"helmsim/internal/model"
	"helmsim/internal/units"
)

// Budget describes the GPU memory available for per-prompt state.
type Budget struct {
	// Capacity is the GPU memory size.
	Capacity units.Bytes
	// WeightBytes is the stored size of GPU-resident weights (compressed
	// size when quantization is on).
	WeightBytes units.Bytes
	// StagingBytes is the weight staging allocation: the zig-zag schedule
	// double-buffers the largest host-resident layer transfer.
	StagingBytes units.Bytes
	// Reserved is framework overhead (CUDA context, cuBLAS workspace).
	Reserved units.Bytes
}

// DefaultBudget builds a budget for the A100 with the calibrated reserve.
func DefaultBudget(weightBytes, stagingBytes units.Bytes) Budget {
	return Budget{
		Capacity:     calib.GPUMemoryCapacity,
		WeightBytes:  weightBytes,
		StagingBytes: stagingBytes,
		Reserved:     calib.GPUReservedBytes,
	}
}

// Free reports the bytes left for per-prompt state.
func (b Budget) Free() units.Bytes {
	f := b.Capacity - b.WeightBytes - b.StagingBytes - b.Reserved
	if f < 0 {
		return 0
	}
	return f
}

// PerPromptBytes is the GPU footprint of one prompt: its whole-model KV
// cache at full context (prompt + generation) plus activation workspace.
func PerPromptBytes(cfg model.Config, promptLen, genLen int) units.Bytes {
	ctx := promptLen + genLen
	kv := cfg.KVBytesPerPrompt(ctx)
	act := units.Bytes(calib.ActivationBytesPerPromptFactor) *
		units.Bytes(promptLen) * units.Bytes(cfg.Hidden) * units.Bytes(cfg.DTypeBytes)
	return kv + act
}

// MaxBatch solves for the largest batch whose per-prompt state fits the
// budget.
func MaxBatch(cfg model.Config, promptLen, genLen int, b Budget) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if promptLen <= 0 || genLen <= 0 {
		return 0, fmt.Errorf("kvcache: non-positive sequence lengths (%d, %d)", promptLen, genLen)
	}
	per := PerPromptBytes(cfg, promptLen, genLen)
	if per <= 0 {
		return 0, fmt.Errorf("kvcache: non-positive per-prompt footprint")
	}
	return int(b.Free() / per), nil
}

// ---------------------------------------------------------------------------
// Cache manager
// ---------------------------------------------------------------------------

// Entry is one prompt's cache state.
type Entry struct {
	// Ctx is the number of cached positions.
	Ctx int
}

// Cache tracks the KV blocks of a batch of prompts against a byte budget,
// growing each prompt's context as tokens are generated.
type Cache struct {
	cfg     model.Config
	budget  units.Bytes
	used    units.Bytes
	entries map[int]*Entry
}

// NewCache returns a cache manager with the given byte budget.
func NewCache(cfg model.Config, budget units.Bytes) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("kvcache: negative budget %d", budget)
	}
	return &Cache{cfg: cfg, budget: budget, entries: make(map[int]*Entry)}, nil
}

// Admit reserves cache space for a new prompt with the given initial
// context (its prompt length). It fails if the prompt is already admitted
// or the budget is exhausted.
func (c *Cache) Admit(promptID, ctx int) error {
	if ctx <= 0 {
		return fmt.Errorf("kvcache: non-positive context %d", ctx)
	}
	if _, ok := c.entries[promptID]; ok {
		return fmt.Errorf("kvcache: prompt %d already admitted", promptID)
	}
	need := c.cfg.KVBytesPerPrompt(ctx)
	if c.used+need > c.budget {
		return fmt.Errorf("kvcache: budget exhausted admitting prompt %d: %v used + %v needed > %v",
			promptID, c.used, need, c.budget)
	}
	c.entries[promptID] = &Entry{Ctx: ctx}
	c.used += need
	return nil
}

// Extend grows one prompt's cache by a single generated token.
func (c *Cache) Extend(promptID int) error {
	e, ok := c.entries[promptID]
	if !ok {
		return fmt.Errorf("kvcache: prompt %d not admitted", promptID)
	}
	need := c.cfg.KVBytesPerPrompt(e.Ctx+1) - c.cfg.KVBytesPerPrompt(e.Ctx)
	if c.used+need > c.budget {
		return fmt.Errorf("kvcache: budget exhausted extending prompt %d", promptID)
	}
	e.Ctx++
	c.used += need
	return nil
}

// Release frees one prompt's cache.
func (c *Cache) Release(promptID int) error {
	e, ok := c.entries[promptID]
	if !ok {
		return fmt.Errorf("kvcache: prompt %d not admitted", promptID)
	}
	c.used -= c.cfg.KVBytesPerPrompt(e.Ctx)
	delete(c.entries, promptID)
	return nil
}

// Used reports the bytes currently reserved.
func (c *Cache) Used() units.Bytes { return c.used }

// Len reports the number of admitted prompts.
func (c *Cache) Len() int { return len(c.entries) }

// Ctx reports one prompt's current context length (0 if unknown).
func (c *Cache) Ctx(promptID int) int {
	if e, ok := c.entries[promptID]; ok {
		return e.Ctx
	}
	return 0
}
