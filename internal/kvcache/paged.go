package kvcache

import (
	"errors"
	"fmt"

	"helmsim/internal/model"
	"helmsim/internal/units"
)

// Typed ledger errors. Release failures used to share one message,
// which hid refcount bugs: "released twice" (a live double-free — the
// ledger has already been corrupted once) and "never admitted" (a
// caller-side ID mix-up) demand different responses. The prefix-shared
// pages of the real Pool amplify exactly this class of bug, so both
// allocators now distinguish them and fail stop after a double release.
var (
	// ErrUnknownSequence marks an operation on an ID that was never
	// admitted (or whose admission predates this allocator).
	ErrUnknownSequence = errors.New("kvcache: sequence never admitted")
	// ErrDoubleRelease marks a second Release of the same admitted ID —
	// evidence of a refcount bug in the caller.
	ErrDoubleRelease = errors.New("kvcache: sequence already released")
	// ErrPoisoned marks an allocator that observed a double release:
	// its ledger can no longer be trusted, so further admissions are
	// refused (fail stop beats silently corrupt accounting).
	ErrPoisoned = errors.New("kvcache: ledger poisoned by a double release")
	// ErrOutOfPages marks an allocation that found no free page. The
	// continuous batcher keys its preempt-and-requeue policy off it.
	ErrOutOfPages = errors.New("kvcache: out of pages")
)

// PagedCache manages the KV cache at block granularity, the
// PagedAttention scheme of vLLM (Kwon et al. [63], discussed in the
// paper's related work): each prompt holds a list of fixed-size pages and
// grows one token at a time, so memory is committed by actual context
// instead of the worst-case reservation FlexGen makes. The paper's All-CPU
// analysis reserves prompt+generation up front; this allocator quantifies
// the batching headroom block-granular management adds on top. (It is the
// accounting model only — Pool is the variant that actually stores K/V
// rows.)
type PagedCache struct {
	cfg        model.Config
	pageTokens int
	pageBytes  units.Bytes
	totalPages int
	freePages  int
	seqs       map[int]*pagedSeq
	released   map[int]bool
	poisoned   bool
}

// pagedSeq is one prompt's page state.
type pagedSeq struct {
	pages  int
	tokens int
}

// NewPagedCache sizes a paged allocator over a byte budget with the given
// page granularity (tokens per page, vLLM defaults to 16).
func NewPagedCache(cfg model.Config, budget units.Bytes, pageTokens int) (*PagedCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("kvcache: negative budget %d", budget)
	}
	if pageTokens <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive page size %d", pageTokens)
	}
	pageBytes := cfg.KVBytesPerPromptPerBlock(pageTokens) * units.Bytes(cfg.Blocks)
	if pageBytes <= 0 {
		return nil, fmt.Errorf("kvcache: degenerate page size")
	}
	total := int(budget / pageBytes)
	return &PagedCache{
		cfg:        cfg,
		pageTokens: pageTokens,
		pageBytes:  pageBytes,
		totalPages: total,
		freePages:  total,
		seqs:       make(map[int]*pagedSeq),
		released:   make(map[int]bool),
	}, nil
}

// pagesFor is the page count covering n tokens.
func (p *PagedCache) pagesFor(n int) int {
	return (n + p.pageTokens - 1) / p.pageTokens
}

// Admit allocates pages for a prompt's initial context. Inputs are
// validated up front: a context longer than the model's maximum
// sequence length is rejected before any accounting happens, and a
// poisoned ledger refuses all admissions.
func (p *PagedCache) Admit(promptID, tokens int) error {
	if p.poisoned {
		return fmt.Errorf("%w: refusing to admit prompt %d", ErrPoisoned, promptID)
	}
	if tokens <= 0 {
		return fmt.Errorf("kvcache: non-positive context %d", tokens)
	}
	if tokens > p.cfg.MaxSeq {
		return fmt.Errorf("kvcache: context %d exceeds model max sequence %d", tokens, p.cfg.MaxSeq)
	}
	if _, ok := p.seqs[promptID]; ok {
		return fmt.Errorf("kvcache: prompt %d already admitted", promptID)
	}
	need := p.pagesFor(tokens)
	if need > p.freePages {
		return fmt.Errorf("%w: admitting prompt %d (%d needed, %d free)", ErrOutOfPages, promptID, need, p.freePages)
	}
	p.freePages -= need
	p.seqs[promptID] = &pagedSeq{pages: need, tokens: tokens}
	// Re-admitting a previously released ID is legitimate reuse.
	delete(p.released, promptID)
	return nil
}

// Append grows one prompt by a token, taking a fresh page on a boundary.
// Growth past the model's maximum sequence length is rejected.
func (p *PagedCache) Append(promptID int) error {
	s, ok := p.seqs[promptID]
	if !ok {
		return p.unknown(promptID)
	}
	if s.tokens+1 > p.cfg.MaxSeq {
		return fmt.Errorf("kvcache: prompt %d context %d exceeds model max sequence %d", promptID, s.tokens+1, p.cfg.MaxSeq)
	}
	if need := p.pagesFor(s.tokens + 1); need > s.pages {
		if p.freePages == 0 {
			return fmt.Errorf("%w: extending prompt %d", ErrOutOfPages, promptID)
		}
		p.freePages--
		s.pages++
	}
	s.tokens++
	return nil
}

// Release frees a prompt's pages. A second Release of the same ID is a
// double free: it returns ErrDoubleRelease and poisons the ledger so
// later admissions fail instead of accounting against corrupt state.
func (p *PagedCache) Release(promptID int) error {
	s, ok := p.seqs[promptID]
	if !ok {
		return p.unknown(promptID)
	}
	p.freePages += s.pages
	delete(p.seqs, promptID)
	p.released[promptID] = true
	return nil
}

// unknown classifies a miss: an ID released before now is a double
// release (and poisons the ledger); anything else was never admitted.
func (p *PagedCache) unknown(promptID int) error {
	if p.released[promptID] {
		p.poisoned = true
		return fmt.Errorf("%w: prompt %d", ErrDoubleRelease, promptID)
	}
	return fmt.Errorf("%w: prompt %d", ErrUnknownSequence, promptID)
}

// Conserved reports whether the page ledger balances: free pages plus
// every admitted prompt's pages must equal the total, exactly. It holds
// by construction after every successful or failed operation.
func (p *PagedCache) Conserved() bool {
	held := 0
	for _, s := range p.seqs {
		held += s.pages
	}
	return p.freePages >= 0 && p.freePages+held == p.totalPages
}

// Poisoned reports whether a double release has been observed.
func (p *PagedCache) Poisoned() bool { return p.poisoned }

// Len reports admitted prompts.
func (p *PagedCache) Len() int { return len(p.seqs) }

// FreePages reports unallocated pages.
func (p *PagedCache) FreePages() int { return p.freePages }

// TotalPages reports the budget in pages.
func (p *PagedCache) TotalPages() int { return p.totalPages }

// UsedBytes reports the committed cache bytes.
func (p *PagedCache) UsedBytes() units.Bytes {
	return units.Bytes(p.totalPages-p.freePages) * p.pageBytes
}

// InternalFragmentation reports the fraction of allocated page slots not
// backing a real token — the waste block-granular allocation trades for
// flexibility. Zero when nothing is allocated.
func (p *PagedCache) InternalFragmentation() float64 {
	var slots, used int
	for _, s := range p.seqs {
		slots += s.pages * p.pageTokens
		used += s.tokens
	}
	if slots == 0 {
		return 0
	}
	return float64(slots-used) / float64(slots)
}

// MaxBatchPaged reports how many prompts of the given prompt length a
// paged allocator admits at admission time within the budget — the
// headroom over MaxBatch's full prompt+generation reservation. Generation
// then grows page by page, evicting or queueing when pages run out.
// Inputs are validated before any allocator is constructed.
func MaxBatchPaged(cfg model.Config, promptLen, pageTokens int, budget units.Bytes) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if promptLen <= 0 {
		return 0, fmt.Errorf("kvcache: non-positive prompt length %d", promptLen)
	}
	if promptLen > cfg.MaxSeq {
		return 0, fmt.Errorf("kvcache: prompt length %d exceeds model max sequence %d", promptLen, cfg.MaxSeq)
	}
	p, err := NewPagedCache(cfg, budget, pageTokens)
	if err != nil {
		return 0, err
	}
	perPrompt := p.pagesFor(promptLen)
	if perPrompt == 0 {
		return 0, nil
	}
	return p.totalPages / perPrompt, nil
}
