package kvcache

import (
	"fmt"

	"helmsim/internal/model"
	"helmsim/internal/units"
)

// PagedCache manages the KV cache at block granularity, the
// PagedAttention scheme of vLLM (Kwon et al. [63], discussed in the
// paper's related work): each prompt holds a list of fixed-size pages and
// grows one token at a time, so memory is committed by actual context
// instead of the worst-case reservation FlexGen makes. The paper's All-CPU
// analysis reserves prompt+generation up front; this allocator quantifies
// the batching headroom block-granular management adds on top.
type PagedCache struct {
	cfg        model.Config
	pageTokens int
	pageBytes  units.Bytes
	totalPages int
	freePages  int
	seqs       map[int]*pagedSeq
}

// pagedSeq is one prompt's page state.
type pagedSeq struct {
	pages  int
	tokens int
}

// NewPagedCache sizes a paged allocator over a byte budget with the given
// page granularity (tokens per page, vLLM defaults to 16).
func NewPagedCache(cfg model.Config, budget units.Bytes, pageTokens int) (*PagedCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if budget < 0 {
		return nil, fmt.Errorf("kvcache: negative budget %d", budget)
	}
	if pageTokens <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive page size %d", pageTokens)
	}
	pageBytes := cfg.KVBytesPerPromptPerBlock(pageTokens) * units.Bytes(cfg.Blocks)
	if pageBytes <= 0 {
		return nil, fmt.Errorf("kvcache: degenerate page size")
	}
	total := int(budget / pageBytes)
	return &PagedCache{
		cfg:        cfg,
		pageTokens: pageTokens,
		pageBytes:  pageBytes,
		totalPages: total,
		freePages:  total,
		seqs:       make(map[int]*pagedSeq),
	}, nil
}

// pagesFor is the page count covering n tokens.
func (p *PagedCache) pagesFor(n int) int {
	return (n + p.pageTokens - 1) / p.pageTokens
}

// Admit allocates pages for a prompt's initial context.
func (p *PagedCache) Admit(promptID, tokens int) error {
	if tokens <= 0 {
		return fmt.Errorf("kvcache: non-positive context %d", tokens)
	}
	if _, ok := p.seqs[promptID]; ok {
		return fmt.Errorf("kvcache: prompt %d already admitted", promptID)
	}
	need := p.pagesFor(tokens)
	if need > p.freePages {
		return fmt.Errorf("kvcache: out of pages admitting prompt %d (%d needed, %d free)", promptID, need, p.freePages)
	}
	p.freePages -= need
	p.seqs[promptID] = &pagedSeq{pages: need, tokens: tokens}
	return nil
}

// Append grows one prompt by a token, taking a fresh page on a boundary.
func (p *PagedCache) Append(promptID int) error {
	s, ok := p.seqs[promptID]
	if !ok {
		return fmt.Errorf("kvcache: prompt %d not admitted", promptID)
	}
	if need := p.pagesFor(s.tokens + 1); need > s.pages {
		if p.freePages == 0 {
			return fmt.Errorf("kvcache: out of pages extending prompt %d", promptID)
		}
		p.freePages--
		s.pages++
	}
	s.tokens++
	return nil
}

// Release frees a prompt's pages.
func (p *PagedCache) Release(promptID int) error {
	s, ok := p.seqs[promptID]
	if !ok {
		return fmt.Errorf("kvcache: prompt %d not admitted", promptID)
	}
	p.freePages += s.pages
	delete(p.seqs, promptID)
	return nil
}

// Len reports admitted prompts.
func (p *PagedCache) Len() int { return len(p.seqs) }

// FreePages reports unallocated pages.
func (p *PagedCache) FreePages() int { return p.freePages }

// TotalPages reports the budget in pages.
func (p *PagedCache) TotalPages() int { return p.totalPages }

// UsedBytes reports the committed cache bytes.
func (p *PagedCache) UsedBytes() units.Bytes {
	return units.Bytes(p.totalPages-p.freePages) * p.pageBytes
}

// InternalFragmentation reports the fraction of allocated page slots not
// backing a real token — the waste block-granular allocation trades for
// flexibility. Zero when nothing is allocated.
func (p *PagedCache) InternalFragmentation() float64 {
	var slots, used int
	for _, s := range p.seqs {
		slots += s.pages * p.pageTokens
		used += s.tokens
	}
	if slots == 0 {
		return 0
	}
	return float64(slots-used) / float64(slots)
}

// MaxBatchPaged reports how many prompts of the given prompt length a
// paged allocator admits at admission time within the budget — the
// headroom over MaxBatch's full prompt+generation reservation. Generation
// then grows page by page, evicting or queueing when pages run out.
func MaxBatchPaged(cfg model.Config, promptLen, pageTokens int, budget units.Bytes) (int, error) {
	p, err := NewPagedCache(cfg, budget, pageTokens)
	if err != nil {
		return 0, err
	}
	if promptLen <= 0 {
		return 0, fmt.Errorf("kvcache: non-positive prompt length %d", promptLen)
	}
	perPrompt := p.pagesFor(promptLen)
	if perPrompt == 0 {
		return 0, nil
	}
	return p.totalPages / perPrompt, nil
}
