package bwbench

import (
	"math"
	"testing"

	"helmsim/internal/memdev"
	"helmsim/internal/units"
)

func TestSweepSizes(t *testing.T) {
	sizes := SweepSizes()
	if len(sizes) != 8 {
		t.Fatalf("got %d sizes, want 8 (256 MB .. 32 GB doubling)", len(sizes))
	}
	if sizes[0] != 256*units.MB || sizes[len(sizes)-1] < 32*units.GB {
		t.Errorf("range = [%v, %v]", sizes[0], sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Errorf("sizes not doubling at %d", i)
		}
	}
}

func TestRunDevice(t *testing.T) {
	s, err := RunDevice(memdev.NewOptane(0), HostToGPU, SweepSizes())
	if err != nil {
		t.Fatal(err)
	}
	if s.Device != "NVDRAM-0" || s.Dir != HostToGPU {
		t.Errorf("series identity: %s %v", s.Device, s.Dir)
	}
	if len(s.Points) != 8 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Fig. 3a anchors.
	if got := s.Points[0].BW.GBpsf(); math.Abs(got-19.91) > 0.2 {
		t.Errorf("256MB = %.2f, want ~19.91", got)
	}
	if got := s.Points[7].BW.GBpsf(); math.Abs(got-15.52) > 0.2 {
		t.Errorf("32GB = %.2f, want ~15.52", got)
	}
	if _, err := RunDevice(memdev.NewOptane(0), HostToGPU, []units.Bytes{0}); err == nil {
		t.Errorf("zero size accepted")
	}
}

// Fig. 3a caption: "DRAM-0, DRAM-1, MM-0, and MM-1 overlap perfectly" for
// host->GPU; Fig. 3b: "DRAM-0, DRAM-1, and MM-1 overlap perfectly" but not
// MM-0 for GPU->host.
func TestFig3CaptionOverlaps(t *testing.T) {
	series, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	get := func(dev string, dir Direction) Series {
		for _, s := range series {
			if s.Device == dev && s.Dir == dir {
				return s
			}
		}
		t.Fatalf("missing series %s %v", dev, dir)
		return Series{}
	}
	close := func(a, b Series, tol float64) bool {
		for i := range a.Points {
			if math.Abs(a.Points[i].BW.GBpsf()-b.Points[i].BW.GBpsf()) > tol {
				return false
			}
		}
		return true
	}
	// Host->GPU: DRAM-0 == MM-0 and DRAM-1 == MM-1.
	if !close(get("DRAM-0", HostToGPU), get("MM-0", HostToGPU), 0.01) {
		t.Errorf("MM-0 should overlap DRAM-0 host->GPU (Fig. 3a)")
	}
	if !close(get("DRAM-1", HostToGPU), get("MM-1", HostToGPU), 0.01) {
		t.Errorf("MM-1 should overlap DRAM-1 host->GPU (Fig. 3a)")
	}
	// NVDRAM sits below DRAM at every size.
	dram := get("DRAM-0", HostToGPU)
	nv := get("NVDRAM-0", HostToGPU)
	for i := range dram.Points {
		if nv.Points[i].BW >= dram.Points[i].BW {
			t.Errorf("NVDRAM should trail DRAM at %v", dram.Points[i].Size)
		}
	}
	// GPU->host: MM-1 == DRAM-1 but MM-0 < DRAM-0.
	if !close(get("DRAM-1", GPUToHost), get("MM-1", GPUToHost), 0.01) {
		t.Errorf("MM-1 should overlap DRAM-1 gpu->host (Fig. 3b)")
	}
	mm0 := get("MM-0", GPUToHost)
	d0 := get("DRAM-0", GPUToHost)
	for i := range mm0.Points {
		if mm0.Points[i].BW >= d0.Points[i].BW {
			t.Errorf("MM-0 should trail DRAM-0 gpu->host at %v (Fig. 3b)", mm0.Points[i].Size)
		}
	}
	// GPU->host Optane: node 1 above node 0 (§IV-A).
	nv0 := get("NVDRAM-0", GPUToHost)
	nv1 := get("NVDRAM-1", GPUToHost)
	for i := range nv0.Points {
		if nv1.Points[i].BW <= nv0.Points[i].BW {
			t.Errorf("NVDRAM-1 writes should beat NVDRAM-0 at %v", nv0.Points[i].Size)
		}
	}
	// Optane writes are ~an order of magnitude below reads.
	readPeak := nv.Points[0].BW.GBpsf()
	writePeak := 0.0
	for _, p := range nv1.Points {
		if bw := p.BW.GBpsf(); bw > writePeak {
			writePeak = bw
		}
	}
	if writePeak > readPeak/4 {
		t.Errorf("Optane write peak %.2f too close to read %.2f", writePeak, readPeak)
	}
}

func TestDirectionString(t *testing.T) {
	if HostToGPU.String() != "host-to-gpu" || GPUToHost.String() != "gpu-to-host" {
		t.Errorf("direction names broken")
	}
}

func TestRunFig3SeriesCount(t *testing.T) {
	series, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	// 6 devices x 2 directions.
	if len(series) != 12 {
		t.Errorf("series = %d, want 12", len(series))
	}
}
