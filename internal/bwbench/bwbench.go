// Package bwbench reproduces the paper's nvbandwidth characterization
// (§IV-A, Fig. 3): one-shot host->GPU and GPU->host copy bandwidth for
// buffer sizes between 256 MB and 32 GB, for every memory device on both
// NUMA nodes.
package bwbench

import (
	"fmt"

	"helmsim/internal/memdev"
	"helmsim/internal/numa"
	"helmsim/internal/units"
	"helmsim/internal/xfer"
)

// Direction is the copy direction.
type Direction int

// Copy directions.
const (
	HostToGPU Direction = iota
	GPUToHost
)

// String names the direction as the paper's figure captions do.
func (d Direction) String() string {
	if d == HostToGPU {
		return "host-to-gpu"
	}
	return "gpu-to-host"
}

// Point is one measurement.
type Point struct {
	// Size is the buffer size.
	Size units.Bytes
	// BW is the measured copy bandwidth.
	BW units.Bandwidth
}

// Series is one device's sweep in one direction.
type Series struct {
	// Device is the device label, e.g. "NVDRAM-0".
	Device string
	// Dir is the copy direction.
	Dir Direction
	// Points holds one measurement per swept size, ascending.
	Points []Point
}

// SweepSizes returns the Fig. 3 buffer sizes: eight power-of-two steps
// from 256 MB up to the 32 GB end of the sweep.
func SweepSizes() []units.Bytes {
	out := make([]units.Bytes, 0, 8)
	for s, i := 256*units.MB, 0; i < 8; s, i = s*2, i+1 {
		out = append(out, s)
	}
	return out
}

// RunDevice sweeps one device in one direction.
func RunDevice(dev memdev.Device, dir Direction, sizes []units.Bytes) (Series, error) {
	eng := xfer.New()
	s := Series{Device: dev.Name(), Dir: dir}
	for _, size := range sizes {
		if size <= 0 {
			return Series{}, fmt.Errorf("bwbench: non-positive size %d", size)
		}
		var bw units.Bandwidth
		var err error
		if dir == HostToGPU {
			bw, err = eng.MeasureHostToGPU(dev, size)
		} else {
			bw, err = eng.MeasureGPUToHost(dev, size)
		}
		if err != nil {
			return Series{}, fmt.Errorf("bwbench: %s %v at %v: %w", dev.Name(), dir, size, err)
		}
		s.Points = append(s.Points, Point{Size: size, BW: bw})
	}
	return s, nil
}

// RunFig3 sweeps every memory device of both NUMA nodes in both directions
// — the full Fig. 3 dataset.
func RunFig3() ([]Series, error) {
	top := numa.System()
	sizes := SweepSizes()
	var out []Series
	for _, dir := range []Direction{HostToGPU, GPUToHost} {
		for _, dev := range top.AllMemoryDevices() {
			s, err := RunDevice(dev, dir, sizes)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}
