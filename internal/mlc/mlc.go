// Package mlc models the CPU-side memory characterization the paper cross-
// checks with Intel Memory Latency Checker (§IV-A): per-socket bandwidth
// and idle latency for every (initiator node, target memory) pair,
// including the observation that remote Memory Mode cannot reach remote
// DRAM bandwidth.
package mlc

import (
	"fmt"

	"helmsim/internal/calib"
	"helmsim/internal/memdev"
	"helmsim/internal/units"
)

// Access is one (initiator, target) measurement.
type Access struct {
	// FromNode is the initiating socket.
	FromNode int
	// Target is the memory pool kind.
	Target memdev.Kind
	// TargetNode is the pool's socket.
	TargetNode int
	// ReadBW and WriteBW are the sustained CPU bandwidths.
	ReadBW, WriteBW units.Bandwidth
	// Latency is the idle load-to-use latency.
	Latency units.Duration
}

// Local reports whether the access stays on-socket.
func (a Access) Local() bool { return a.FromNode == a.TargetNode }

// Measure returns the simulated MLC measurement for one pair.
func Measure(fromNode, targetNode int, target memdev.Kind) (Access, error) {
	if fromNode < 0 || fromNode >= calib.NUMANodes || targetNode < 0 || targetNode >= calib.NUMANodes {
		return Access{}, fmt.Errorf("mlc: node out of range (%d -> %d)", fromNode, targetNode)
	}
	a := Access{FromNode: fromNode, Target: target, TargetNode: targetNode}
	local := a.Local()
	remote := func(bw units.Bandwidth, factor float64) units.Bandwidth {
		if local {
			return bw
		}
		return units.Bandwidth(float64(bw) * factor)
	}
	switch target {
	case memdev.KindDRAM:
		a.ReadBW = remote(calib.MLCDRAMReadLocal, calib.MLCRemoteFactor)
		a.WriteBW = remote(calib.MLCDRAMWriteLocal, calib.MLCRemoteFactor)
		a.Latency = pick(local, calib.MLCDRAMLatencyLocal, calib.MLCDRAMLatencyRemote)
	case memdev.KindOptane:
		a.ReadBW = remote(calib.MLCOptaneReadLocal, calib.MLCRemoteFactor)
		a.WriteBW = remote(calib.MLCOptaneWriteLocal, calib.MLCOptaneRemoteWriteFactor)
		a.Latency = pick(local, calib.MLCOptaneLatencyLocal, calib.MLCOptaneLatencyRemote)
	case memdev.KindMemoryMode:
		// Cache hits serve at DRAM speed locally; remotely the MM path
		// stays below remote DRAM (§IV-A).
		a.ReadBW = remote(calib.MLCDRAMReadLocal, calib.MLCRemoteFactor*calib.MLCMemoryModeRemoteFactor)
		a.WriteBW = remote(calib.MLCDRAMWriteLocal, calib.MLCRemoteFactor*calib.MLCMemoryModeRemoteFactor)
		a.Latency = pick(local, calib.MLCDRAMLatencyLocal, calib.MLCDRAMLatencyRemote)
	default:
		return Access{}, fmt.Errorf("mlc: unsupported target kind %v", target)
	}
	return a, nil
}

// pick selects the local or remote value.
func pick(local bool, l, r units.Duration) units.Duration {
	if local {
		return l
	}
	return r
}

// Matrix measures every (initiator, target node, kind) combination,
// initiator-major.
func Matrix() ([]Access, error) {
	var out []Access
	for from := 0; from < calib.NUMANodes; from++ {
		for target := 0; target < calib.NUMANodes; target++ {
			for _, kind := range []memdev.Kind{memdev.KindDRAM, memdev.KindOptane, memdev.KindMemoryMode} {
				a, err := Measure(from, target, kind)
				if err != nil {
					return nil, err
				}
				out = append(out, a)
			}
		}
	}
	return out, nil
}
