package mlc

import (
	"testing"

	"helmsim/internal/memdev"
)

func TestMeasureValidation(t *testing.T) {
	if _, err := Measure(-1, 0, memdev.KindDRAM); err == nil {
		t.Errorf("negative node accepted")
	}
	if _, err := Measure(0, 5, memdev.KindDRAM); err == nil {
		t.Errorf("out-of-range node accepted")
	}
	if _, err := Measure(0, 0, memdev.KindSSD); err == nil {
		t.Errorf("SSD target accepted (not byte-addressable)")
	}
}

func TestLocalVsRemote(t *testing.T) {
	for _, kind := range []memdev.Kind{memdev.KindDRAM, memdev.KindOptane, memdev.KindMemoryMode} {
		local, err := Measure(0, 0, kind)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := Measure(0, 1, kind)
		if err != nil {
			t.Fatal(err)
		}
		if !local.Local() || remote.Local() {
			t.Errorf("%v locality flags wrong", kind)
		}
		if remote.ReadBW >= local.ReadBW {
			t.Errorf("%v remote read %v not below local %v", kind, remote.ReadBW, local.ReadBW)
		}
		if remote.Latency <= local.Latency {
			t.Errorf("%v remote latency %v not above local %v", kind, remote.Latency, local.Latency)
		}
	}
}

// [30]-[32]: Optane reads ~2.5x below DRAM, writes ~6x below; remote Optane
// writes collapse further ([31]).
func TestOptaneDeficitsMatchLiterature(t *testing.T) {
	dram, _ := Measure(0, 0, memdev.KindDRAM)
	opt, _ := Measure(0, 0, memdev.KindOptane)
	readRatio := float64(dram.ReadBW) / float64(opt.ReadBW)
	if readRatio < 2.2 || readRatio > 2.8 {
		t.Errorf("DRAM/Optane read ratio = %.2f, want ~2.5", readRatio)
	}
	writeRatio := float64(dram.WriteBW) / float64(opt.WriteBW)
	if writeRatio < 5 || writeRatio > 7 {
		t.Errorf("DRAM/Optane write ratio = %.2f, want ~6", writeRatio)
	}
	optRemote, _ := Measure(0, 1, memdev.KindOptane)
	dramRemote, _ := Measure(0, 1, memdev.KindDRAM)
	// Optane writes lose more from going remote than DRAM writes do.
	optDrop := float64(optRemote.WriteBW) / float64(opt.WriteBW)
	dramDrop := float64(dramRemote.WriteBW) / float64(dram.WriteBW)
	if optDrop >= dramDrop {
		t.Errorf("remote Optane write drop %.2f not worse than DRAM's %.2f", optDrop, dramDrop)
	}
}

// §IV-A: remote Memory Mode cannot reach remote DRAM bandwidth.
func TestRemoteMMBelowRemoteDRAM(t *testing.T) {
	mm, _ := Measure(0, 1, memdev.KindMemoryMode)
	dram, _ := Measure(0, 1, memdev.KindDRAM)
	if mm.ReadBW >= dram.ReadBW {
		t.Errorf("remote MM %v should trail remote DRAM %v (§IV-A)", mm.ReadBW, dram.ReadBW)
	}
	// Locally MM serves from its DRAM cache at DRAM speed.
	mmL, _ := Measure(0, 0, memdev.KindMemoryMode)
	dramL, _ := Measure(0, 0, memdev.KindDRAM)
	if mmL.ReadBW != dramL.ReadBW {
		t.Errorf("local MM %v should match local DRAM %v", mmL.ReadBW, dramL.ReadBW)
	}
}

func TestMatrixComplete(t *testing.T) {
	m, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// 2 initiators x 2 targets x 3 kinds.
	if len(m) != 12 {
		t.Fatalf("matrix has %d entries, want 12", len(m))
	}
	seen := map[[3]int]bool{}
	for _, a := range m {
		key := [3]int{a.FromNode, a.TargetNode, int(a.Target)}
		if seen[key] {
			t.Errorf("duplicate entry %v", key)
		}
		seen[key] = true
		if a.ReadBW <= 0 || a.WriteBW <= 0 || a.Latency <= 0 {
			t.Errorf("non-positive measurement: %+v", a)
		}
	}
}
