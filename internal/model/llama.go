package model

import "fmt"

// Arch selects the decoder-block flavour. The paper evaluates OPT
// (§III-B); its conclusion notes the techniques "may be generalized to
// other models and frameworks by adapting to their compute schedule and
// data movement costs" — ArchLlama provides that generalization target:
// no biases, RMSNorm, a gated (three-matrix) FFN, and grouped-query
// attention that shrinks the KV cache.
type Arch int

// Architectures.
const (
	// ArchOPT is the decoder used by the OPT family: biased projections,
	// LayerNorm, a 4x two-matrix FFN, full multi-head attention.
	ArchOPT Arch = iota
	// ArchLlama is the LLaMA-2 style decoder: unbiased projections,
	// RMSNorm, a gated FFN (gate/up/down), grouped-query attention.
	ArchLlama
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchOPT:
		return "opt"
	case ArchLlama:
		return "llama"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// llamaExt carries the LLaMA-specific shape parameters; zero values mean
// "not a LLaMA config".
type llamaExt struct {
	// KVHeads is the grouped-query KV head count (== Heads for MHA).
	KVHeads int
	// FFNDim is the intermediate dimension of the gated FFN.
	FFNDim int
}

// WithLlama upgrades a Config to the LLaMA architecture with the given
// grouped-query KV head count and FFN intermediate size.
func (c Config) WithLlama(kvHeads, ffnDim int) Config {
	c.Arch = ArchLlama
	c.KVHeads = kvHeads
	c.FFNDim = ffnDim
	return c
}

// Llama2_7B returns the LLaMA-2 7B configuration (32 heads, MHA, gated
// FFN of 11008).
func Llama2_7B() Config {
	c := Config{
		Name: "Llama2-7B", Hidden: 4096, Heads: 32, Blocks: 32,
		Vocab: 32000, MaxSeq: 4096, DTypeBytes: 2,
	}
	return c.WithLlama(32, 11008)
}

// Llama2_70B returns the LLaMA-2 70B configuration (64 heads with 8 KV
// heads — grouped-query attention — and a 28672-wide gated FFN).
func Llama2_70B() Config {
	c := Config{
		Name: "Llama2-70B", Hidden: 8192, Heads: 64, Blocks: 80,
		Vocab: 32000, MaxSeq: 4096, DTypeBytes: 2,
	}
	return c.WithLlama(8, 28672)
}

// KVWidth is the K/V projection width — the row width of one cached
// K or V position. Grouped-query attention shrinks it below Hidden;
// the paged KV pool sizes its page rows with it.
func (c Config) KVWidth() int { return c.kvDim() }

// kvDim is the K/V projection width: Hidden scaled down by the
// grouped-query ratio.
func (c Config) kvDim() int {
	if c.Arch == ArchLlama && c.KVHeads > 0 && c.KVHeads < c.Heads {
		return c.Hidden / c.Heads * c.KVHeads
	}
	return c.Hidden
}

// ffnDim is the FFN intermediate width.
func (c Config) ffnDim() int {
	if c.Arch == ArchLlama && c.FFNDim > 0 {
		return c.FFNDim
	}
	return 4 * c.Hidden
}

// llamaMHAWeights lists a LLaMA attention layer's tensors: unbiased q/k/v
// (k and v at the grouped-query width), output projection, RMSNorm weight.
func (c Config) llamaMHAWeights() []WeightSpec {
	h := int64(c.Hidden)
	kv := int64(c.kvDim())
	return []WeightSpec{
		c.spec("w_q", h*h),
		c.spec("w_k", h*kv),
		c.spec("w_v", h*kv),
		c.spec("w_out", h*h),
		c.spec("w_norm", h),
	}
}

// llamaFFNWeights lists the gated FFN: gate and up projections into the
// intermediate width, down projection back, RMSNorm weight.
func (c Config) llamaFFNWeights() []WeightSpec {
	h := int64(c.Hidden)
	f := int64(c.ffnDim())
	return []WeightSpec{
		c.spec("w_gate", h*f),
		c.spec("w_up", h*f),
		c.spec("w_down", f*h),
		c.spec("w_norm", h),
	}
}
