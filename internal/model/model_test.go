package model

import (
	"math"
	"testing"
	"testing/quick"

	"helmsim/internal/units"
)

func TestLayerCounts(t *testing.T) {
	// §III-B: "OPT-30B and OPT-175B contain 48 and 96 decoder blocks,
	// resulting in 96 and 192 hidden layers ... a total of 98 and 194
	// layers."
	cases := []struct {
		cfg    Config
		blocks int
		layers int
	}{
		{OPT30B(), 48, 98},
		{OPT175B(), 96, 194},
	}
	for _, c := range cases {
		if c.cfg.Blocks != c.blocks {
			t.Errorf("%s blocks = %d, want %d", c.cfg.Name, c.cfg.Blocks, c.blocks)
		}
		if got := c.cfg.NumLayers(); got != c.layers {
			t.Errorf("%s NumLayers = %d, want %d", c.cfg.Name, got, c.layers)
		}
		if got := len(c.cfg.Layers()); got != c.layers {
			t.Errorf("%s len(Layers) = %d, want %d", c.cfg.Name, got, c.layers)
		}
	}
}

func TestHiddenSizes(t *testing.T) {
	// §IV-B: "hidden layer size of 12,288 versus OPT-30B's 7,168".
	if h := OPT175B().Hidden; h != 12288 {
		t.Errorf("OPT-175B hidden = %d, want 12288", h)
	}
	if h := OPT30B().Hidden; h != 7168 {
		t.Errorf("OPT-30B hidden = %d, want 7168", h)
	}
}

// §V: "for a single OPT-175B self-attention block, the model weights occupy
// 3.38 GB" (GiB) and "the total memory footprint of the model weights is
// 324.48 GB".
func TestOPT175BFootprintMatchesPaper(t *testing.T) {
	c := OPT175B()
	block := c.BlockWeightBytes().GiBf()
	if math.Abs(block-3.38) > 0.02 {
		t.Errorf("block weight = %.3f GiB, want ~3.38", block)
	}
	total := float64(c.TotalWeightBytes()) / float64(units.GiB)
	// 96 blocks x 3.38 GiB = 324.5 GiB plus ~2.4 GiB of embeddings.
	if total < 324 || total > 329 {
		t.Errorf("total weight = %.2f GiB, want ~324.5 (+embeddings)", total)
	}
}

// §V quotes 47.98 MB per block per prompt at context 2048 ("72x smaller
// than weights") and 4.5 GB across the model; the physical two-tensor K+V
// size is exactly twice that (the paper's prose halves it), and the
// physical size is what the batch-cap arithmetic of §V-C needs.
func TestOPT175BKVCacheMatchesPaper(t *testing.T) {
	c := OPT175B()
	perBlock := c.KVBytesPerPromptPerBlock(2048).MiBf()
	if math.Abs(perBlock-2*48) > 0.1 {
		t.Errorf("KV per block = %.2f MiB, want 96 (2x the paper's 47.98)", perBlock)
	}
	ratio := float64(c.BlockWeightBytes()) / float64(c.KVBytesPerPromptPerBlock(2048))
	if ratio < 35 || ratio > 37 {
		t.Errorf("weights/KV ratio = %.1f, want ~36 (the paper's 72 under its halved accounting)", ratio)
	}
	total := float64(c.KVBytesPerPrompt(2048)) / float64(units.GiB)
	if math.Abs(total-9.0) > 0.2 {
		t.Errorf("KV per prompt = %.2f GiB, want ~9.0 (2x the paper's 4.5)", total)
	}
}

func TestParamCounts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // billions, loose
	}{
		{OPT1B3(), 1.3},
		{OPT6B7(), 6.7},
		{OPT13B(), 13},
		{OPT30B(), 30},
		{OPT66B(), 66},
		{OPT175B(), 175},
	}
	for _, c := range cases {
		// Tolerance is loose for the small models, whose untied output
		// embedding (FlexGen stores it separately) adds a visible share.
		got := float64(c.cfg.ParamCount()) / 1e9
		if math.Abs(got-c.want)/c.want > 0.10 {
			t.Errorf("%s params = %.2fB, want ~%.1fB", c.cfg.Name, got, c.want)
		}
	}
}

func TestLayersStructure(t *testing.T) {
	c := OPT30B()
	layers := c.Layers()
	if layers[0].Type != LayerInputEmbed || layers[0].Block != -1 {
		t.Errorf("layer 0 = %v/%d, want InputEmbed/-1", layers[0].Type, layers[0].Block)
	}
	last := layers[len(layers)-1]
	if last.Type != LayerOutputEmbed || last.Block != -1 {
		t.Errorf("last layer = %v, want OutputEmbed", last.Type)
	}
	for b := 0; b < c.Blocks; b++ {
		mha := layers[1+2*b]
		ffn := layers[2+2*b]
		if mha.Type != LayerMHA || mha.Block != b {
			t.Errorf("layer %d = %v/%d, want MHA/%d", mha.Index, mha.Type, mha.Block, b)
		}
		if ffn.Type != LayerFFN || ffn.Block != b {
			t.Errorf("layer %d = %v/%d, want FFN/%d", ffn.Index, ffn.Type, ffn.Block, b)
		}
	}
	// Indexes are consecutive.
	for i, l := range layers {
		if l.Index != i {
			t.Errorf("layer %d has Index %d", i, l.Index)
		}
	}
}

func TestWeightSpecOrder(t *testing.T) {
	c := OPT175B()
	layers := c.Layers()
	mha := layers[1]
	wantMHA := []string{"w_q", "b_q", "w_k", "b_k", "w_v", "b_v", "w_out", "b_out", "w_ln", "b_ln"}
	if len(mha.Weights) != len(wantMHA) {
		t.Fatalf("MHA has %d specs, want %d", len(mha.Weights), len(wantMHA))
	}
	for i, w := range mha.Weights {
		if w.Name != wantMHA[i] {
			t.Errorf("MHA spec %d = %s, want %s (FlexGen order matters for the allocator)", i, w.Name, wantMHA[i])
		}
	}
	ffn := layers[2]
	wantFFN := []string{"w_fc1", "b_fc1", "w_fc2", "b_fc2", "w_ln", "b_ln"}
	for i, w := range ffn.Weights {
		if w.Name != wantFFN[i] {
			t.Errorf("FFN spec %d = %s, want %s", i, w.Name, wantFFN[i])
		}
	}
	// FFN is 2x MHA in projection weights: 8h^2 vs 4h^2.
	h := int64(c.Hidden)
	if ffn.Weights[0].Elems != 4*h*h || ffn.Weights[2].Elems != 4*h*h {
		t.Errorf("fc sizes wrong: %d, %d", ffn.Weights[0].Elems, ffn.Weights[2].Elems)
	}
	if mha.Weights[0].Elems != h*h {
		t.Errorf("w_q size = %d, want h^2", mha.Weights[0].Elems)
	}
}

func TestFFNIsTwiceMHA(t *testing.T) {
	// Fig. 7: "the larger FFN layer" — FFN carries ~2x the MHA bytes, the
	// root of the sawtooth.
	for _, cfg := range []Config{OPT30B(), OPT175B()} {
		layers := cfg.Layers()
		mha := layers[1].WeightBytes()
		ffn := layers[2].WeightBytes()
		r := float64(ffn) / float64(mha)
		if r < 1.95 || r > 2.05 {
			t.Errorf("%s FFN/MHA = %.3f, want ~2", cfg.Name, r)
		}
	}
}

func TestValidate(t *testing.T) {
	good := OPT30B()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "x", Hidden: 0, Heads: 1, Blocks: 1, Vocab: 1, MaxSeq: 1, DTypeBytes: 2},
		{Name: "x", Hidden: 10, Heads: 3, Blocks: 1, Vocab: 1, MaxSeq: 1, DTypeBytes: 2},
		{Name: "x", Hidden: 8, Heads: 2, Blocks: 0, Vocab: 1, MaxSeq: 1, DTypeBytes: 2},
		{Name: "x", Hidden: 8, Heads: 2, Blocks: 1, Vocab: 0, MaxSeq: 1, DTypeBytes: 2},
		{Name: "x", Hidden: 8, Heads: 2, Blocks: 1, Vocab: 1, MaxSeq: 0, DTypeBytes: 2},
		{Name: "x", Hidden: 8, Heads: 2, Blocks: 1, Vocab: 1, MaxSeq: 1, DTypeBytes: 0},
		{Name: "x", Hidden: 8, Heads: 0, Blocks: 1, Vocab: 1, MaxSeq: 1, DTypeBytes: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("OPT-175B")
	if err != nil || c.Hidden != 12288 {
		t.Errorf("ByName(OPT-175B) = %v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Errorf("unknown model should fail")
	}
}

func TestFlops(t *testing.T) {
	c := OPT175B()
	h := float64(c.Hidden)
	if got := c.MHAProjFlops(1); got != 8*h*h {
		t.Errorf("MHAProjFlops(1) = %g, want %g", got, 8*h*h)
	}
	if got := c.FFNFlops(1); got != 16*h*h {
		t.Errorf("FFNFlops(1) = %g, want %g", got, 16*h*h)
	}
	if got := c.AttnFlopsPerPrompt(1, 128); got != 4*128*h {
		t.Errorf("AttnFlopsPerPrompt = %g", got)
	}
	if got := c.OutputFlops(2); got != 4*h*float64(c.Vocab) {
		t.Errorf("OutputFlops = %g", got)
	}
}

func TestKVAndHiddenEdgeCases(t *testing.T) {
	c := OPT30B()
	if got := c.KVBytesPerPromptPerBlock(-1); got != 0 {
		t.Errorf("negative ctx KV = %v", got)
	}
	if got := c.HiddenStateBytes(-1); got != 0 {
		t.Errorf("negative tokens hidden = %v", got)
	}
	if got := c.HiddenStateBytes(10); got != units.Bytes(10*7168*2) {
		t.Errorf("HiddenStateBytes(10) = %v", got)
	}
}

func TestLayerTypeString(t *testing.T) {
	cases := map[LayerType]string{
		LayerInputEmbed: "InputEmbed", LayerMHA: "MHA",
		LayerFFN: "FFN", LayerOutputEmbed: "OutputEmbed",
		LayerType(42): "LayerType(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

// Property: KV bytes scale linearly with context for every config.
func TestKVLinearInContextProperty(t *testing.T) {
	cfgs := []Config{OPT1B3(), OPT30B(), OPT175B()}
	f := func(ctx uint16, ci uint8) bool {
		c := cfgs[int(ci)%len(cfgs)]
		x := int(ctx%4096) + 1
		return c.KVBytesPerPromptPerBlock(2*x) == 2*c.KVBytesPerPromptPerBlock(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total weight bytes equal dtype width times param count.
func TestWeightBytesMatchParamsProperty(t *testing.T) {
	for _, c := range []Config{OPT1B3(), OPT6B7(), OPT13B(), OPT30B(), OPT66B(), OPT175B()} {
		if got, want := c.TotalWeightBytes(), units.Bytes(c.ParamCount())*units.Bytes(c.DTypeBytes); got != want {
			t.Errorf("%s: bytes %d != params*dtype %d", c.Name, got, want)
		}
	}
}
