package model

import (
	"math"
	"testing"
)

func TestLlamaConfigsValid(t *testing.T) {
	for _, c := range []Config{Llama2_7B(), Llama2_70B()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Arch != ArchLlama {
			t.Errorf("%s arch = %v", c.Name, c.Arch)
		}
	}
	if _, err := ByName("Llama2-70B"); err != nil {
		t.Errorf("ByName(Llama2-70B): %v", err)
	}
}

func TestLlamaParamCounts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // billions
	}{
		{Llama2_7B(), 6.7},
		{Llama2_70B(), 69},
	}
	for _, c := range cases {
		got := float64(c.cfg.ParamCount()) / 1e9
		if math.Abs(got-c.want)/c.want > 0.08 {
			t.Errorf("%s params = %.2fB, want ~%.1fB", c.cfg.Name, got, c.want)
		}
	}
}

// Grouped-query attention: 70B uses 8 KV heads over 64 query heads, so its
// per-token KV cache is 8x smaller than full MHA would be.
func TestGQAShrinksKVCache(t *testing.T) {
	c := Llama2_70B()
	got := c.KVBytesPerPromptPerBlock(1)
	fullMHA := 2 * 1 * c.Hidden * c.DTypeBytes
	if int(got) != fullMHA/8 {
		t.Errorf("GQA KV per token = %d, want %d (1/8 of MHA)", got, fullMHA/8)
	}
	// 7B is full MHA: no reduction.
	c7 := Llama2_7B()
	if int(c7.KVBytesPerPromptPerBlock(1)) != 2*c7.Hidden*c7.DTypeBytes {
		t.Errorf("7B KV wrong")
	}
}

func TestLlamaWeightSpecs(t *testing.T) {
	c := Llama2_70B()
	layers := c.Layers()
	mha := layers[1]
	// No biases anywhere; k/v at grouped width.
	names := map[string]int64{}
	for _, w := range mha.Weights {
		names[w.Name] = w.Elems
	}
	h := int64(c.Hidden)
	if names["w_q"] != h*h || names["w_out"] != h*h {
		t.Errorf("q/out sizes wrong: %v", names)
	}
	if names["w_k"] != h*h/8 || names["w_v"] != h*h/8 {
		t.Errorf("grouped k/v sizes wrong: %v", names)
	}
	if _, ok := names["b_q"]; ok {
		t.Errorf("llama should not carry biases")
	}
	ffn := layers[2]
	f := int64(c.FFNDim)
	fnames := map[string]int64{}
	for _, w := range ffn.Weights {
		fnames[w.Name] = w.Elems
	}
	for _, n := range []string{"w_gate", "w_up", "w_down"} {
		if fnames[n] != h*f {
			t.Errorf("%s = %d, want %d", n, fnames[n], h*f)
		}
	}
	// Embedding layers: no position table, no output bias.
	for _, w := range layers[0].Weights {
		if w.Name == "w_pos" {
			t.Errorf("llama should not have a position table")
		}
	}
}

func TestLlamaFlops(t *testing.T) {
	c := Llama2_70B()
	h := float64(c.Hidden)
	kv := h / 8
	if got, want := c.MHAProjFlops(1), 2*(2*h*h+2*h*kv); got != want {
		t.Errorf("MHAProjFlops = %g, want %g", got, want)
	}
	if got, want := c.FFNFlops(1), 2*3*h*float64(c.FFNDim); got != want {
		t.Errorf("FFNFlops = %g, want %g", got, want)
	}
	// OPT flops are unchanged by the generalization.
	o := OPT175B()
	oh := float64(o.Hidden)
	if got := o.MHAProjFlops(1); got != 8*oh*oh {
		t.Errorf("OPT MHAProjFlops changed: %g", got)
	}
}

func TestLlamaValidation(t *testing.T) {
	bad := Llama2_70B()
	bad.KVHeads = 7 // does not divide 64
	if err := bad.Validate(); err == nil {
		t.Errorf("bad KV heads accepted")
	}
	bad = Llama2_70B()
	bad.FFNDim = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero FFN dim accepted")
	}
}

func TestArchString(t *testing.T) {
	if ArchOPT.String() != "opt" || ArchLlama.String() != "llama" || Arch(7).String() != "Arch(7)" {
		t.Errorf("arch names broken")
	}
}

func TestWithLlama(t *testing.T) {
	c := optConfig("custom", 1024, 16, 8).WithLlama(4, 2816)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.kvDim() != 1024/16*4 {
		t.Errorf("kvDim = %d", c.kvDim())
	}
	if c.ffnDim() != 2816 {
		t.Errorf("ffnDim = %d", c.ffnDim())
	}
	// OPT defaults.
	o := OPT30B()
	if o.kvDim() != o.Hidden || o.ffnDim() != 4*o.Hidden {
		t.Errorf("OPT dims changed")
	}
}
