// Package model describes decoder-only transformer architectures — the OPT
// family the paper serves (§III-B) — at the granularity FlexGen schedules
// them: an input-embedding layer, alternating multi-head-attention (MHA)
// and feed-forward-network (FFN) layers (two per decoder block), and an
// output-embedding layer. OPT-30B has 48 blocks => 98 layers, OPT-175B has
// 96 blocks => 194 layers, matching §III-B.
//
// Each layer carries its weight specs in FlexGen's initialization order;
// the placement package's cumsum allocator is sensitive to that order, and
// reproducing it is what makes the paper's achieved weight distributions
// (Figs. 7b, 7c, 10) come out exactly.
package model

import (
	"fmt"

	"helmsim/internal/units"
)

// LayerType classifies a schedulable layer.
type LayerType int

// Layer types in schedule order.
const (
	LayerInputEmbed LayerType = iota
	LayerMHA
	LayerFFN
	LayerOutputEmbed
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerInputEmbed:
		return "InputEmbed"
	case LayerMHA:
		return "MHA"
	case LayerFFN:
		return "FFN"
	case LayerOutputEmbed:
		return "OutputEmbed"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// WeightSpec is one named weight tensor of a layer.
type WeightSpec struct {
	// Name identifies the tensor, e.g. "w_q" or "b_fc1".
	Name string
	// Elems is the element count.
	Elems int64
	// Bytes is the uncompressed tensor size.
	Bytes units.Bytes
}

// Layer is one schedulable unit of the model.
type Layer struct {
	// Index is the position in the schedule (0-based).
	Index int
	// Block is the decoder block this layer belongs to (-1 for
	// embeddings).
	Block int
	// Type classifies the layer.
	Type LayerType
	// Weights lists the layer's tensors in FlexGen initialization order.
	Weights []WeightSpec
}

// WeightBytes is the total uncompressed weight size of the layer.
func (l Layer) WeightBytes() units.Bytes {
	var n units.Bytes
	for _, w := range l.Weights {
		n += w.Bytes
	}
	return n
}

// Config describes one model of the OPT family.
type Config struct {
	// Name is the model name, e.g. "OPT-175B".
	Name string
	// Hidden is the hidden dimension h.
	Hidden int
	// Heads is the attention head count.
	Heads int
	// Blocks is the decoder block count.
	Blocks int
	// Vocab is the vocabulary size.
	Vocab int
	// MaxSeq is the maximum context length.
	MaxSeq int
	// DTypeBytes is the parameter width (2 for FP16).
	DTypeBytes int
	// Arch selects the decoder flavour (ArchOPT default; see llama.go).
	Arch Arch
	// llamaExt carries the LLaMA-specific shape parameters.
	llamaExt
}

// The OPT family (Zhang et al. [18]); vocabulary 50272, context 2048, FP16.
func optConfig(name string, hidden, heads, blocks int) Config {
	return Config{
		Name:       name,
		Hidden:     hidden,
		Heads:      heads,
		Blocks:     blocks,
		Vocab:      50272,
		MaxSeq:     2048,
		DTypeBytes: 2,
	}
}

// OPT1B3 returns the OPT-1.3B configuration.
func OPT1B3() Config { return optConfig("OPT-1.3B", 2048, 32, 24) }

// OPT6B7 returns the OPT-6.7B configuration.
func OPT6B7() Config { return optConfig("OPT-6.7B", 4096, 32, 32) }

// OPT13B returns the OPT-13B configuration.
func OPT13B() Config { return optConfig("OPT-13B", 5120, 40, 40) }

// OPT30B returns the OPT-30B configuration evaluated in the paper
// (48 blocks, 96 hidden layers, 98 schedulable layers, §III-B).
func OPT30B() Config { return optConfig("OPT-30B", 7168, 56, 48) }

// OPT66B returns the OPT-66B configuration.
func OPT66B() Config { return optConfig("OPT-66B", 9216, 72, 64) }

// OPT175B returns the OPT-175B configuration evaluated in the paper
// (96 blocks, 192 hidden layers, 194 schedulable layers, §III-B).
func OPT175B() Config { return optConfig("OPT-175B", 12288, 96, 96) }

// ByName looks a configuration up by its name (case-sensitive, as printed
// by the constructors).
func ByName(name string) (Config, error) {
	for _, c := range []Config{OPT1B3(), OPT6B7(), OPT13B(), OPT30B(), OPT66B(), OPT175B(), Llama2_7B(), Llama2_70B()} {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown config %q", name)
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Hidden <= 0:
		return fmt.Errorf("model %s: non-positive hidden %d", c.Name, c.Hidden)
	case c.Heads <= 0:
		return fmt.Errorf("model %s: non-positive heads %d", c.Name, c.Heads)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	case c.Blocks <= 0:
		return fmt.Errorf("model %s: non-positive blocks %d", c.Name, c.Blocks)
	case c.Vocab <= 0:
		return fmt.Errorf("model %s: non-positive vocab %d", c.Name, c.Vocab)
	case c.MaxSeq <= 0:
		return fmt.Errorf("model %s: non-positive max seq %d", c.Name, c.MaxSeq)
	case c.DTypeBytes <= 0:
		return fmt.Errorf("model %s: non-positive dtype width %d", c.Name, c.DTypeBytes)
	}
	if c.Arch == ArchLlama {
		if c.KVHeads <= 0 || c.Heads%c.KVHeads != 0 {
			return fmt.Errorf("model %s: KV heads %d must divide heads %d", c.Name, c.KVHeads, c.Heads)
		}
		if c.FFNDim <= 0 {
			return fmt.Errorf("model %s: non-positive FFN dim %d", c.Name, c.FFNDim)
		}
	}
	return nil
}

// spec builds a WeightSpec from an element count.
func (c Config) spec(name string, elems int64) WeightSpec {
	return WeightSpec{Name: name, Elems: elems, Bytes: units.Bytes(elems) * units.Bytes(c.DTypeBytes)}
}

// mhaWeights lists an MHA layer's tensors in the framework's
// initialization order; for OPT that is the q/k/v/out projections with
// their biases interleaved, then layer norm.
func (c Config) mhaWeights() []WeightSpec {
	if c.Arch == ArchLlama {
		return c.llamaMHAWeights()
	}
	h := int64(c.Hidden)
	return []WeightSpec{
		c.spec("w_q", h*h), c.spec("b_q", h),
		c.spec("w_k", h*h), c.spec("b_k", h),
		c.spec("w_v", h*h), c.spec("b_v", h),
		c.spec("w_out", h*h), c.spec("b_out", h),
		c.spec("w_ln", h), c.spec("b_ln", h),
	}
}

// ffnWeights lists an FFN layer's tensors in the framework's
// initialization order; for OPT that is the two fully connected layers
// with biases, then layer norm.
func (c Config) ffnWeights() []WeightSpec {
	if c.Arch == ArchLlama {
		return c.llamaFFNWeights()
	}
	h := int64(c.Hidden)
	return []WeightSpec{
		c.spec("w_fc1", 4*h*h), c.spec("b_fc1", 4*h),
		c.spec("w_fc2", 4*h*h), c.spec("b_fc2", h),
		c.spec("w_ln", h), c.spec("b_ln", h),
	}
}

// Layers enumerates the schedulable layers: input embedding, Blocks x
// (MHA, FFN), output embedding — 2*Blocks + 2 layers total (§III-B).
func (c Config) Layers() []Layer {
	h := int64(c.Hidden)
	layers := make([]Layer, 0, 2*c.Blocks+2)
	embed := []WeightSpec{c.spec("w_token", int64(c.Vocab)*h)}
	if c.Arch == ArchOPT {
		// OPT learns positions with a 2-token offset, hence +2; LLaMA
		// uses rotary embeddings and stores no position table.
		embed = append(embed, c.spec("w_pos", int64(c.MaxSeq+2)*h))
	}
	layers = append(layers, Layer{
		Index: 0, Block: -1, Type: LayerInputEmbed,
		Weights: embed,
	})
	for b := 0; b < c.Blocks; b++ {
		layers = append(layers, Layer{
			Index: 1 + 2*b, Block: b, Type: LayerMHA, Weights: c.mhaWeights(),
		})
		layers = append(layers, Layer{
			Index: 2 + 2*b, Block: b, Type: LayerFFN, Weights: c.ffnWeights(),
		})
	}
	out := []WeightSpec{c.spec("w_ln", h)}
	if c.Arch == ArchOPT {
		out = append(out, c.spec("b_ln", h))
	}
	out = append(out, c.spec("w_token", int64(c.Vocab)*h))
	layers = append(layers, Layer{
		Index: 2*c.Blocks + 1, Block: -1, Type: LayerOutputEmbed,
		Weights: out,
	})
	return layers
}

// NumLayers is the schedulable layer count (2*Blocks + 2).
func (c Config) NumLayers() int { return 2*c.Blocks + 2 }

// TotalWeightBytes is the uncompressed model footprint.
func (c Config) TotalWeightBytes() units.Bytes {
	var n units.Bytes
	for _, l := range c.Layers() {
		n += l.WeightBytes()
	}
	return n
}

// BlockWeightBytes is the uncompressed size of one decoder block (one MHA +
// one FFN layer). For OPT-175B this is the paper's 3.38 GiB (§V).
func (c Config) BlockWeightBytes() units.Bytes {
	var n units.Bytes
	for _, w := range c.mhaWeights() {
		n += w.Bytes
	}
	for _, w := range c.ffnWeights() {
		n += w.Bytes
	}
	return n
}

// KVBytesPerPromptPerBlock is the physical K+V cache footprint one prompt
// needs in one decoder block at the given context length: two tensors of
// ctx x hidden x dtype. Note the paper's §V prose quotes exactly half of
// this (47.98 MiB per OPT-175B block at ctx=2048 where the physical size
// is 96 MiB) — but the physical size is what makes the paper's own batch
// caps (8 baseline, 44 All-CPU at a 149-token context) come out of the GPU
// capacity arithmetic, so the simulator uses it and EXPERIMENTS.md records
// the discrepancy.
// Grouped-query attention (ArchLlama with KVHeads < Heads) shrinks the
// cache by the head-group ratio.
func (c Config) KVBytesPerPromptPerBlock(ctx int) units.Bytes {
	if ctx < 0 {
		ctx = 0
	}
	return 2 * units.Bytes(ctx) * units.Bytes(c.kvDim()) * units.Bytes(c.DTypeBytes)
}

// KVBytesPerPrompt is the whole-model K+V footprint of one prompt.
func (c Config) KVBytesPerPrompt(ctx int) units.Bytes {
	return c.KVBytesPerPromptPerBlock(ctx) * units.Bytes(c.Blocks)
}

// HiddenStateBytes is the size of the hidden-state activation for the given
// number of tokens.
func (c Config) HiddenStateBytes(tokens int) units.Bytes {
	if tokens < 0 {
		tokens = 0
	}
	return units.Bytes(tokens) * units.Bytes(c.Hidden) * units.Bytes(c.DTypeBytes)
}

// ---------------------------------------------------------------------------
// FLOP counts. tokens is the number of query tokens processed in the step
// across the whole batch (batch*promptLen for prefill, batch for decode).
// ---------------------------------------------------------------------------

// MHAProjFlops counts the q/k/v/out projection flops for the given token
// count: four h x h matmuls at 2 flops per MAC (k/v shrink to the
// grouped-query width under ArchLlama).
func (c Config) MHAProjFlops(tokens int) float64 {
	h := float64(c.Hidden)
	kv := float64(c.kvDim())
	return 2 * float64(tokens) * (2*h*h + 2*h*kv)
}

// AttnFlopsPerPrompt counts one prompt's attention-score and weighted-sum
// flops: qTokens query tokens attending over ctx cached positions.
func (c Config) AttnFlopsPerPrompt(qTokens, ctx int) float64 {
	h := float64(c.Hidden)
	return 4 * float64(qTokens) * float64(ctx) * h
}

// FFNFlops counts the feed-forward matmuls: h->4h->h for OPT, the gated
// three-matmul h->f, h->f, f->h for LLaMA.
func (c Config) FFNFlops(tokens int) float64 {
	h := float64(c.Hidden)
	if c.Arch == ArchLlama {
		f := float64(c.ffnDim())
		return 2 * float64(tokens) * 3 * h * f
	}
	return 2 * float64(tokens) * 8 * h * h
}

// OutputFlops counts the final logit projection for the given token count
// (only the last position per prompt needs logits during generation).
func (c Config) OutputFlops(tokens int) float64 {
	return 2 * float64(tokens) * float64(c.Hidden) * float64(c.Vocab)
}

// ParamCount is the total parameter count.
func (c Config) ParamCount() int64 {
	var n int64
	for _, l := range c.Layers() {
		for _, w := range l.Weights {
			n += w.Elems
		}
	}
	return n
}
