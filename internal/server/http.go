package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"helmsim/internal/serve"
)

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	// Prompt is the token-id prompt (required, non-empty, ids in
	// [0, vocab)).
	Prompt []int `json:"prompt"`
	// MaxTokens is how many tokens to generate (default and cap:
	// Config.MaxTokens).
	MaxTokens int `json:"max_tokens"`
	// TimeoutMS optionally tightens the server-side deadline.
	TimeoutMS int `json:"timeout_ms"`
	// Class is the request's service class: "interactive" (default),
	// "rag", or "batch". Lower classes are shed first under overload.
	Class string `json:"class,omitempty"`
}

// GenerateResponse is the success body.
type GenerateResponse struct {
	Tokens []int  `json:"tokens"`
	Model  string `json:"model"`
	// Generation is the checkpoint generation the request was served
	// from (increments on hot reload).
	Generation int64   `json:"generation"`
	QueueMS    float64 `json:"queue_ms"`
	ServiceMS  float64 `json:"service_ms"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/generate — run a generation (JSON in/out)
//	GET  /healthz     — liveness: 200 while the process runs
//	GET  /readyz      — readiness: 200 only while admitting
//	GET  /statz       — JSON counter snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", s.handleGenerate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client hanging up mid-body is not actionable
}

// setRetryAfter writes a Retry-After header, rounding to whole seconds
// with a one-second floor (the header's granularity).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	if d <= 0 {
		return
	}
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func (s *Server) shed(w http.ResponseWriter, status int, retryAfter time.Duration, msg string) {
	setRetryAfter(w, retryAfter)
	writeJSON(w, status, errorResponse{Error: msg})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if len(req.Prompt) == 0 {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty prompt"})
		return
	}
	for i, tok := range req.Prompt {
		if tok < 0 || tok >= s.cfg.Model.Vocab {
			s.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("prompt token %d out of vocabulary [0,%d): %d", i, s.cfg.Model.Vocab, tok)})
			return
		}
	}
	if req.TimeoutMS < 0 {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "negative timeout_ms"})
		return
	}
	maxTokens := req.MaxTokens
	switch {
	case maxTokens == 0:
		maxTokens = s.cfg.MaxTokens
	case maxTokens < 0 || maxTokens > s.cfg.MaxTokens:
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("max_tokens %d outside [1,%d]", req.MaxTokens, s.cfg.MaxTokens)})
		return
	}

	class, err := serve.ParseClass(req.Class)
	if err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	j, status, retryAfter, reason := s.admit(r.Context(), req.Prompt, maxTokens, time.Duration(req.TimeoutMS)*time.Millisecond, class)
	if j == nil {
		s.shed(w, status, retryAfter, reason)
		return
	}
	// The worker owns the job until done closes — even if the client
	// disconnects (the worker sees that through j.ctx).
	<-j.done
	if j.err != nil {
		s.shed(w, j.status, j.retryAfter, j.err.Error())
		return
	}
	writeJSON(w, http.StatusOK, GenerateResponse{
		Tokens:     j.tokens,
		Model:      s.cfg.Model.Name,
		Generation: j.generation,
		QueueMS:    float64(j.queued.Microseconds()) / 1e3,
		ServiceMS:  float64(j.service.Microseconds()) / 1e3,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness only: a draining daemon is still alive (it must be, to
	// finish the drain); readiness is /readyz's job.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		// The readiness refusal carries the same Retry-After contract as
		// breaker-open and queue-closed sheds: probers back off uniformly.
		setRetryAfter(w, s.cfg.DrainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
