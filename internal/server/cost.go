package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"helmsim/internal/serve"
)

// CostConfig tunes token-budget admission and brownout overload
// control. Every admission decision is priced in estimated tokens —
// prompt length plus the output-length predictor's decode bucket — so
// a 4k-token RAG prefill and a 10-token chat turn stop being
// interchangeable units of load. A zero TokenBudget disables cost
// admission and brownout entirely (per-class budgets still apply when
// set), preserving the count-only behavior.
type CostConfig struct {
	// TokenBudget caps the admitted-cost backlog in estimated tokens:
	// an arrival whose estimate does not fit is rejected with 429 and
	// Retry-After. It is also the denominator of the brownout
	// thresholds. 0 disables both.
	TokenBudget int
	// ClassBudgets caps each class's own backlog share, keyed by the
	// class wire name ("interactive", "rag", "batch"); absent or zero
	// means no per-class cap. A per-class cap protects the other
	// classes from one class's burst even before brownout engages.
	ClassBudgets map[string]int
	// BrownoutHigh, BrownoutLow, and BrownoutSustain tune the shared
	// serve.Brownout machine (zero values take its documented
	// defaults: 0.8, 0.5, 8).
	BrownoutHigh, BrownoutLow float64
	BrownoutSustain           int
	// BrownoutRetryAfter is the Retry-After advertised on brownout
	// rejections (default 2s): honest backpressure, not a silent drop.
	BrownoutRetryAfter time.Duration
	// PredictorSeed seeds the output-length predictor (default 1).
	// Replicas of one fleet should share it so their cost estimates —
	// and therefore their advertised backlogs — are comparable.
	PredictorSeed int64
}

func (c CostConfig) withDefaults() CostConfig {
	if c.BrownoutRetryAfter == 0 {
		c.BrownoutRetryAfter = 2 * time.Second
	}
	if c.PredictorSeed == 0 {
		c.PredictorSeed = 1
	}
	return c
}

// Validate rejects unusable cost configurations (after defaulting).
func (c CostConfig) Validate() error {
	c = c.withDefaults()
	if c.TokenBudget < 0 {
		return fmt.Errorf("server: negative token budget %d", c.TokenBudget)
	}
	for name, b := range c.ClassBudgets {
		if _, err := serve.ParseClass(name); err != nil || name == "" {
			return fmt.Errorf("server: class budget for unknown class %q", name)
		}
		if b < 0 {
			return fmt.Errorf("server: negative class budget %d for %q", b, name)
		}
	}
	if c.BrownoutHigh < 0 || c.BrownoutHigh > 1 || c.BrownoutLow < 0 || c.BrownoutLow > 1 {
		return fmt.Errorf("server: brownout thresholds outside [0,1]: high %v low %v", c.BrownoutHigh, c.BrownoutLow)
	}
	hi, lo := c.BrownoutHigh, c.BrownoutLow
	if hi == 0 {
		hi = 0.8
	}
	if lo == 0 {
		lo = 0.5
	}
	if lo > hi {
		return fmt.Errorf("server: brownout low water %v above high water %v", lo, hi)
	}
	if c.BrownoutSustain < 0 {
		return fmt.Errorf("server: negative brownout sustain %d", c.BrownoutSustain)
	}
	if c.BrownoutRetryAfter < 0 {
		return fmt.Errorf("server: negative brownout retry-after %v", c.BrownoutRetryAfter)
	}
	return nil
}

// classLedger is one class's live counters. The fields mirror
// serve.ClassCounts bucket for bucket; Stats() assembles the rows the
// shared ClassLedgerConserved predicate checks.
type classLedger struct {
	arrivals, admitted                                                                atomic.Int64
	shedQueueFull, shedMaxWait, shedDeadline, shedBrownout, shedCostBudget, shedOther atomic.Int64
}

// costState is the server's admission-cost bookkeeping, guarded by the
// server's own mu (the brownout machine must observe a consistent
// backlog, and admission already holds the lock).
type costState struct {
	backlog      int64
	classBacklog [serve.NumClasses]int64
	classWaiting [serve.NumClasses]int
	brown        *serve.Brownout
}

// resolveClassBudgets turns the name-keyed config map into a
// class-indexed array.
func resolveClassBudgets(m map[string]int) [serve.NumClasses]int64 {
	var out [serve.NumClasses]int64
	for name, b := range m {
		if c, err := serve.ParseClass(name); err == nil && name != "" {
			out[c] = int64(b)
		}
	}
	return out
}

// shedClass folds a class-blind shed reason into the class row's
// ShedOther bucket, keeping the per-class ledger conserved without
// duplicating the global ledger's itemization.
func (s *Server) shedClass(class serve.Class, bucket *atomic.Int64) {
	bucket.Add(1)
	s.classes[class].shedOther.Add(1)
}

// releaseCost settles a job's admitted cost exactly once (the worker
// calls it after the job settles, whatever the outcome) and gives the
// brownout machine its drain-side observation — this is how the daemon
// exits brownout when load drops, even with no new arrivals.
func (s *Server) releaseCost(j *job) {
	if j.est == 0 {
		return
	}
	s.mu.Lock()
	s.cost.backlog -= int64(j.est)
	s.cost.classBacklog[j.class] -= int64(j.est)
	s.cost.brown.Release(int(s.cost.backlog))
	s.mu.Unlock()
}

// classRows assembles the /statz per-class ledger rows.
func (s *Server) classRows() []serve.ClassCounts {
	rows := serve.NewClassLedger()
	s.mu.Lock()
	for c := range rows {
		rows[c].QueueDepth = int64(s.cost.classWaiting[c])
		rows[c].CostBacklog = s.cost.classBacklog[c]
	}
	s.mu.Unlock()
	for c := range rows {
		l := &s.classes[c]
		rows[c].Arrivals = l.arrivals.Load()
		rows[c].Admitted = l.admitted.Load()
		rows[c].ShedQueueFull = l.shedQueueFull.Load()
		rows[c].ShedMaxWait = l.shedMaxWait.Load()
		rows[c].ShedDeadline = l.shedDeadline.Load()
		rows[c].ShedBrownout = l.shedBrownout.Load()
		rows[c].ShedCostBudget = l.shedCostBudget.Load()
		rows[c].ShedOther = l.shedOther.Load()
	}
	return rows
}

// shedDeadlineJob settles a job whose deadline passed while it queued:
// the work is never started (it is already worthless to its client),
// the breaker probe — if this job carried one — is returned unused,
// and the shed lands in its own conserved bucket.
func (s *Server) shedDeadlineJob(j *job) {
	s.shedDeadline.Add(1)
	s.classes[j.class].shedDeadline.Add(1)
	if j.probe {
		s.breaker.ProbeAbort()
	}
	j.status = http.StatusGatewayTimeout
	j.err = fmt.Errorf("server: deadline passed after queueing %v; not started", j.queued.Round(time.Millisecond))
}

// deadlinePassed reports whether j's effective deadline (the tighter of
// the server-side and client-requested timeouts) elapsed while queued.
func (s *Server) deadlinePassed(j *job) bool {
	eff := s.cfg.RequestTimeout
	if j.timeout > 0 && (eff == 0 || j.timeout < eff) {
		eff = j.timeout
	}
	return eff > 0 && j.queued >= eff
}
