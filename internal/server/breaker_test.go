package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"helmsim/internal/fault"
)

// fakeClock is an injectable breaker clock (single-goroutine tests).
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(t *testing.T, cfg BreakerConfig) (*Breaker, *fakeClock) {
	t.Helper()
	b, err := NewBreaker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

var errTransientTest = fmt.Errorf("flaky read: %w", fault.ErrTransient)

func TestBreakerConfigValidation(t *testing.T) {
	bad := []BreakerConfig{
		{Window: -1},
		{MinSamples: -2},
		{Window: 4, MinSamples: 8}, // floor above window
		{TripRate: 1.5},
		{TripRate: -0.1},
		{Cooldown: -time.Second},
		{Probes: -1},
	}
	for i, cfg := range bad {
		if _, err := NewBreaker(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	if _, err := NewBreaker(BreakerConfig{}); err != nil {
		t.Errorf("zero config (defaults) rejected: %v", err)
	}
}

func TestBreakerTripsOnlyPastSampleFloor(t *testing.T) {
	b, _ := testBreaker(t, BreakerConfig{Window: 8, MinSamples: 4, TripRate: 0.5, Cooldown: time.Second})
	// One failure out of one observation is a 100% rate but below the
	// floor: must not trip.
	b.Record(errTransientTest)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("tripped below sample floor: %v", st)
	}
	b.Record(nil)
	b.Record(errTransientTest)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("tripped below sample floor: %v", st)
	}
	// Fourth observation reaches the floor at 3/4 failing: trip.
	b.Record(errTransientTest)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v after crossing trip rate, want open", st)
	}
	if s := b.Snapshot(); s.Trips != 1 {
		t.Errorf("trips = %d, want 1", s.Trips)
	}
	if probe, ok := b.Allow(); ok || probe {
		t.Error("open breaker admitted a request before cooldown")
	}
}

func TestBreakerIgnoresPermanentErrors(t *testing.T) {
	b, _ := testBreaker(t, BreakerConfig{Window: 8, MinSamples: 2, TripRate: 0.5})
	for i := 0; i < 20; i++ {
		b.Record(errors.New("corrupt record")) // permanent: not a load signal
	}
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("permanent errors tripped the breaker: %v", st)
	}
	if s := b.Snapshot(); s.WindowFill != 0 {
		t.Errorf("permanent errors entered the window: fill %d", s.WindowFill)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := testBreaker(t, BreakerConfig{Window: 8, MinSamples: 2, TripRate: 0.5, Cooldown: time.Second, Probes: 1})
	b.Record(errTransientTest)
	b.Record(errTransientTest)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}
	if ra := b.RetryAfter(); ra != time.Second {
		t.Errorf("RetryAfter = %v, want full cooldown", ra)
	}
	clk.advance(500 * time.Millisecond)
	if _, ok := b.Allow(); ok {
		t.Fatal("admitted during cooldown")
	}
	clk.advance(600 * time.Millisecond)
	probe, ok := b.Allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (probe %v, ok %v), want a probe", probe, ok)
	}
	// Only Probes concurrent probes fit.
	if _, ok := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted with Probes=1")
	}
	b.ProbeDone(true)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if s := b.Snapshot(); s.Recoveries != 1 || s.WindowFill != 0 {
		t.Errorf("snapshot after recovery: %+v", s)
	}
	if probe, ok := b.Allow(); !ok || probe {
		t.Errorf("closed breaker Allow = (probe %v, ok %v)", probe, ok)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(t, BreakerConfig{Window: 8, MinSamples: 2, TripRate: 0.5, Cooldown: time.Second, Probes: 1})
	b.Record(errTransientTest)
	b.Record(errTransientTest)
	clk.advance(time.Second)
	if probe, ok := b.Allow(); !ok || !probe {
		t.Fatal("probe not admitted after cooldown")
	}
	b.ProbeDone(false)
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", st)
	}
	s := b.Snapshot()
	if s.Trips != 1 || s.Reopens != 1 {
		t.Errorf("failed probe should count as a reopen of the same incident: %+v", s)
	}
	// The new cooldown starts from the reopen.
	if _, ok := b.Allow(); ok {
		t.Fatal("admitted immediately after reopen")
	}
	clk.advance(time.Second)
	if probe, ok := b.Allow(); !ok || !probe {
		t.Fatal("probe not re-admitted after second cooldown")
	}
	// An aborted probe frees the slot without a verdict.
	b.ProbeAbort()
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after aborted probe = %v, want half-open", st)
	}
	if probe, ok := b.Allow(); !ok || !probe {
		t.Fatal("slot not released by ProbeAbort")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	// Old failures age out: after Window successes, ancient failures
	// cannot contribute to a trip.
	b, _ := testBreaker(t, BreakerConfig{Window: 4, MinSamples: 4, TripRate: 0.75, Cooldown: time.Second})
	b.Record(errTransientTest)
	b.Record(errTransientTest)
	for i := 0; i < 4; i++ {
		b.Record(nil)
	}
	b.Record(errTransientTest) // 1/4 failing in the current window
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("aged-out failures tripped the breaker: %v", st)
	}
	s := b.Snapshot()
	if s.WindowFill != 4 || s.FailureRate != 0.25 {
		t.Errorf("window snapshot %+v, want fill 4 rate 0.25", s)
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(9): "BreakerState(9)",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}
