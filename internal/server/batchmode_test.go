package server

import (
	"context"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"helmsim/internal/infer"
)

// TestBatchModeMatchesDirectEngine: the continuous-batching daemon
// returns byte-identical tokens to a solo engine for concurrent
// requests of different lengths, and /statz carries the batch snapshot
// with a conserved ledger.
func TestBatchModeMatchesDirectEngine(t *testing.T) {
	mc := tinyModel()
	path, w := writeCheckpoint(t, mc, 3)
	ref, err := infer.New(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	type jobCase struct {
		prompt []int
		n      int
	}
	jobs := []jobCase{
		{[]int{1, 2, 3}, 8},
		{[]int{4, 5}, 3},
		{[]int{1, 2, 3, 4, 5, 6}, 5},
		{[]int{7}, 10},
		{[]int{1, 2, 3}, 2}, // same prefix as job 0: prefix-cache fodder
	}
	want := make([][]int, len(jobs))
	for i, j := range jobs {
		ref.Reset()
		want[i], err = ref.Generate(j.prompt, j.n)
		if err != nil {
			t.Fatal(err)
		}
	}

	s, ts := startServer(t, Config{
		Model: mc, OpenStore: fileOpener(path), Workers: 3,
		Batch: BatchConfig{Enabled: true, MaxSeqs: 2, KVPages: 64, PageTokens: 4},
	})

	var wg sync.WaitGroup
	codes := make([]int, len(jobs))
	got := make([]GenerateResponse, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j jobCase) {
			defer wg.Done()
			codes[i], got[i], _ = postGenerate(t, ts.URL, GenerateRequest{Prompt: j.prompt, MaxTokens: j.n})
		}(i, j)
	}
	wg.Wait()
	for i := range jobs {
		if codes[i] != http.StatusOK {
			t.Fatalf("job %d: status %d", i, codes[i])
		}
		if !equalTokenSlices(got[i].Tokens, want[i]) {
			t.Fatalf("job %d diverged from solo engine: got %v, want %v", i, got[i].Tokens, want[i])
		}
	}

	st := s.Stats()
	if !st.Conserved() {
		t.Fatalf("ledger not conserved: %+v", st)
	}
	if st.Batch == nil {
		t.Fatal("batch mode must publish a batch snapshot")
	}
	if st.Batch.Completed != int(st.Served) || st.Batch.Steps == 0 {
		t.Fatalf("batch snapshot inconsistent with server counters: %+v vs served %d", st.Batch, st.Served)
	}
	if st.Batch.Pool.TotalPages != 64 {
		t.Fatalf("pool snapshot missing: %+v", st.Batch.Pool)
	}
}

// TestBatchModePagePressureSheds: a request whose worst-case context
// exceeds the whole page budget sheds at admission into its own
// conserved bucket.
func TestBatchModePagePressureSheds(t *testing.T) {
	mc := tinyModel()
	path, _ := writeCheckpoint(t, mc, 5)
	s, ts := startServer(t, Config{
		Model: mc, OpenStore: fileOpener(path), Workers: 1, MaxTokens: 64,
		// 4 pages of 4 = 16 positions total.
		Batch: BatchConfig{Enabled: true, MaxSeqs: 2, KVPages: 4, PageTokens: 4},
	})
	code, _, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1, 2, 3, 4}, MaxTokens: 32})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("oversized request: status %d (%s)", code, msg)
	}
	st := s.Stats()
	if st.ShedPagePressure != 1 {
		t.Fatalf("shed_page_pressure: got %d, want 1: %+v", st.ShedPagePressure, st)
	}
	if !st.Conserved() {
		t.Fatalf("ledger not conserved: %+v", st)
	}
	// A right-sized request still serves.
	code, _, msg = postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1, 2, 3, 4}, MaxTokens: 8})
	if code != http.StatusOK {
		t.Fatalf("fitting request after shed: status %d (%s)", code, msg)
	}
}

// TestBatchModeHotReload: a reload quiesces the old batcher and serves
// later requests from the new generation's batcher, byte-identically
// to a solo engine on the new weights.
func TestBatchModeHotReload(t *testing.T) {
	mc := tinyModel()
	pathA, _ := writeCheckpoint(t, mc, 7)
	pathB, wB := writeCheckpoint(t, mc, 8)
	current := pathA
	var mu sync.Mutex
	s, ts := startServer(t, Config{
		Model: mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) {
			mu.Lock()
			p := current
			mu.Unlock()
			return fileOpener(p)()
		},
		Workers: 2,
		Batch:   BatchConfig{Enabled: true, MaxSeqs: 2, KVPages: 64, PageTokens: 4},
	})

	prompt := []int{2, 4, 6}
	code, respA, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompt, MaxTokens: 6})
	if code != http.StatusOK {
		t.Fatalf("pre-reload request: status %d (%s)", code, msg)
	}

	mu.Lock()
	current = pathB
	mu.Unlock()
	if err := s.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}

	refB, err := infer.New(mc, wB)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refB.Generate(prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	code, respB, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompt, MaxTokens: 6})
	if code != http.StatusOK {
		t.Fatalf("post-reload request: status %d (%s)", code, msg)
	}
	if respB.Generation <= respA.Generation {
		t.Fatalf("generation did not advance: %d -> %d", respA.Generation, respB.Generation)
	}
	if !equalTokenSlices(respB.Tokens, want) {
		t.Fatalf("post-reload tokens diverged from new weights: got %v, want %v", respB.Tokens, want)
	}
	// The new batcher starts with a cold prefix cache and pool.
	if st := s.Stats(); st.Batch == nil || st.Batch.Pool.TotalPages != 64 {
		t.Fatalf("batch snapshot after reload: %+v", st.Batch)
	}
}

// TestBatchModeDrain: Drain completes in-flight batch requests and
// tears the batcher down exactly once.
func TestBatchModeDrain(t *testing.T) {
	mc := tinyModel()
	path, _ := writeCheckpoint(t, mc, 9)
	s, err := New(context.Background(), Config{
		Model: mc, OpenStore: fileOpener(path), Workers: 2,
		Batch: BatchConfig{Enabled: true, MaxSeqs: 2, KVPages: 64, PageTokens: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if st := s.Stats(); st.State != "stopped" {
		t.Fatalf("state after drain: %s", st.State)
	}
}

func equalTokenSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
