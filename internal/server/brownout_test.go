package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"helmsim/internal/infer"
	"helmsim/internal/serve"
)

// TestBrownoutEntersShedsAndExits drives the daemon's overload state
// machine through one full cycle: sustained cost backlog enters
// brownout, brownout sheds exactly the classes below its level with an
// honest Retry-After, and draining the backlog exits it — all
// deterministic (count-based observations, gated storage), all
// conserved per class.
func TestBrownoutEntersShedsAndExits(t *testing.T) {
	mc := tinyModel()
	_, w := writeCheckpoint(t, mc, 11)
	bs := &blockStore{backing: w}
	gate := make(chan struct{})
	bs.setGate(gate)

	s, ts := startServer(t, Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return bs, nil, nil },
		Workers:   1,
		MaxQueue:  8,
		Cost: CostConfig{
			TokenBudget:        10,
			BrownoutHigh:       0.5, // backlog >= 5 is overload
			BrownoutLow:        0.3, // backlog <= 3 exits
			BrownoutSustain:    2,
			BrownoutRetryAfter: 3 * time.Second,
		},
	})

	// One interactive job pins the worker in gated storage with an
	// estimated cost of 1 prompt + 8 decode = 9 tokens: over the high
	// water mark, under the budget.
	j, status, _, _ := s.admit(context.Background(), []int{1}, 8, 0, serve.ClassInteractive)
	if j == nil {
		t.Fatalf("pinning admit shed with %d", status)
	}
	// Wait for the worker to pick the job up (and count it admitted), so
	// the mid-test conservation check is not racing the pickup.
	for deadline := time.Now().Add(5 * time.Second); s.Stats().Admitted < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the pinned job")
		}
		time.Sleep(time.Millisecond)
	}

	// First batch arrival observes backlog 9 (streak 1 of 2) and sheds on
	// the token budget, not brownout.
	_, status, _, _ = s.admit(context.Background(), []int{1}, 2, 0, serve.ClassBatch)
	if status != http.StatusTooManyRequests {
		t.Fatalf("pre-brownout batch shed status %d, want 429", status)
	}
	// Second batch arrival completes the sustain streak: brownout level 1,
	// batch shed with 503 and the configured Retry-After — over HTTP, so
	// the header contract is checked end to end.
	body, _ := json.Marshal(GenerateRequest{Prompt: []int{1}, MaxTokens: 2, Class: "batch"})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("brownout shed status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("brownout Retry-After %q, want %q", ra, "3")
	}

	// Classes at or above the level pass brownout and fall through to the
	// budget verdict instead: interactive and rag are degraded honestly
	// (429, still counted in their own rows), never brownout-shed. These
	// two over-high observations also complete a second sustain streak,
	// escalating the level to 2 — interactive (class 2) still passes.
	for _, c := range []serve.Class{serve.ClassRAG, serve.ClassInteractive} {
		_, status, _, _ = s.admit(context.Background(), []int{1}, 2, 0, c)
		if status != http.StatusTooManyRequests {
			t.Fatalf("class %v shed status %d during brownout, want 429", c, status)
		}
	}

	st := s.Stats()
	if st.BrownoutLevel != 2 || st.BrownoutEntries != 2 {
		t.Fatalf("brownout level %d entries %d, want 2/2", st.BrownoutLevel, st.BrownoutEntries)
	}
	if st.ShedBrownout != 1 || st.Classes[serve.ClassBatch].ShedBrownout != 1 {
		t.Fatalf("brownout sheds global %d batch-row %d, want 1/1", st.ShedBrownout, st.Classes[serve.ClassBatch].ShedBrownout)
	}
	for _, c := range []serve.Class{serve.ClassRAG, serve.ClassInteractive} {
		if st.Classes[c].ShedBrownout != 0 {
			t.Fatalf("class %v brownout-shed during level 1", c)
		}
	}
	if !st.Conserved() {
		t.Fatalf("mid-brownout ledger not conserved: %+v", st)
	}

	// Drain: the pinned job settles, releaseCost observes backlog 0 <=
	// low water, and brownout exits completely — reversible, not latched.
	close(gate)
	bs.setGate(nil)
	<-j.done
	if j.err != nil {
		t.Fatalf("pinned job failed: %v", j.err)
	}

	st = s.Stats()
	if st.BrownoutLevel != 0 || st.BrownoutExits != 1 {
		t.Fatalf("post-drain brownout level %d exits %d, want 0/1", st.BrownoutLevel, st.BrownoutExits)
	}
	if st.CostBacklog != 0 {
		t.Fatalf("post-drain cost backlog %d, want 0", st.CostBacklog)
	}

	// Batch admission works again after the exit.
	j2, status, _, _ := s.admit(context.Background(), []int{1}, 2, 0, serve.ClassBatch)
	if j2 == nil {
		t.Fatalf("post-brownout batch admit shed with %d", status)
	}
	<-j2.done
	if j2.err != nil {
		t.Fatalf("post-brownout batch job failed: %v", j2.err)
	}
	st = s.Stats()
	if !st.Conserved() {
		t.Fatalf("final ledger not conserved: %+v", st)
	}
	if st.Classes[serve.ClassBatch].Admitted != 1 || st.Classes[serve.ClassInteractive].Admitted != 1 {
		t.Fatalf("per-class admits wrong: %+v", st.Classes)
	}
}

// TestDeadlineShedNeverStartsWork pins the deadline-aware early shed: a
// request whose effective deadline passed while it queued is settled
// with 504 in its own conserved bucket, and the engine never runs it.
func TestDeadlineShedNeverStartsWork(t *testing.T) {
	mc := tinyModel()
	_, w := writeCheckpoint(t, mc, 12)
	bs := &blockStore{backing: w}
	gate := make(chan struct{})
	bs.setGate(gate)

	s, _ := startServer(t, Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return bs, nil, nil },
		Workers:   1,
		MaxQueue:  4,
	})

	// Pin the worker, then queue a request with a 1ms client deadline; by
	// the time the worker frees up the deadline is long gone.
	j1, status, _, _ := s.admit(context.Background(), []int{1}, 2, 0, serve.ClassInteractive)
	if j1 == nil {
		t.Fatalf("pinning admit shed with %d", status)
	}
	j2, status, _, _ := s.admit(context.Background(), []int{1}, 2, time.Millisecond, serve.ClassRAG)
	if j2 == nil {
		t.Fatalf("deadline admit shed with %d", status)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	bs.setGate(nil)
	<-j1.done
	<-j2.done
	if j1.err != nil {
		t.Fatalf("pinned job failed: %v", j1.err)
	}
	if j2.err == nil || j2.status != http.StatusGatewayTimeout {
		t.Fatalf("expired job settled with status %d err %v, want 504", j2.status, j2.err)
	}
	st := s.Stats()
	if st.ShedDeadline != 1 || st.Classes[serve.ClassRAG].ShedDeadline != 1 {
		t.Fatalf("deadline sheds global %d rag-row %d, want 1/1", st.ShedDeadline, st.Classes[serve.ClassRAG].ShedDeadline)
	}
	if st.Served != 1 {
		t.Fatalf("served %d, want 1 (expired work must not run)", st.Served)
	}
	if !st.Conserved() {
		t.Fatalf("ledger not conserved: %+v", st)
	}
}
