package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"helmsim/internal/infer"
	"helmsim/internal/model"
	"helmsim/internal/serve"
)

// tinyModel is a laptop-scale OPT-shaped config the engine can serve in
// milliseconds.
func tinyModel() model.Config {
	return model.Config{
		Name: "tiny-opt", Hidden: 32, Heads: 4, Blocks: 2,
		Vocab: 64, MaxSeq: 128, DTypeBytes: 2,
	}
}

// writeCheckpoint synthesizes weights and writes them as a checkpoint
// file, returning the path and the in-memory weights for baselines.
func writeCheckpoint(t *testing.T, mc model.Config, seed int64) (string, *infer.MemStore) {
	t.Helper()
	w, err := infer.RandomWeights(mc, seed, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.hlmc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := infer.WriteCheckpoint(f, mc, w, nil); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, w
}

// fileOpener is the production OpenStore shape: open the checkpoint,
// verify its checksums, serve it.
func fileOpener(path string) func() (infer.WeightStore, io.Closer, error) {
	return func() (infer.WeightStore, io.Closer, error) {
		fs, err := infer.OpenFileStore(path)
		if err != nil {
			return nil, nil, err
		}
		if err := fs.Verify(); err != nil {
			fs.Close()
			return nil, nil, err
		}
		return fs, fs, nil
	}
}

// noSleep keeps retry backoff off the test clock.
func noSleep(time.Duration) {}

// startServer builds a Server plus an httptest front end and registers
// teardown.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// postGenerate sends one generation request and decodes the response.
func postGenerate(t *testing.T, url string, req GenerateRequest) (int, GenerateResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var gr GenerateResponse
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, gr, ""
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, GenerateResponse{}, er.Error
}

func TestConfigValidation(t *testing.T) {
	mc := tinyModel()
	open := func() (infer.WeightStore, io.Closer, error) { return nil, nil, nil }
	bad := []Config{
		{Model: mc}, // nil OpenStore
		{Model: mc, OpenStore: open, Workers: -1},   //
		{Model: mc, OpenStore: open, MaxQueue: -1},  //
		{Model: mc, OpenStore: open, MaxWait: -1},   //
		{Model: mc, OpenStore: open, MaxTokens: -1}, //
		{Model: mc, OpenStore: open, RequestTimeout: -1},
		{Model: mc, OpenStore: open, Retry: infer.Retry{Max: -1}},
		{Model: mc, OpenStore: open, Breaker: BreakerConfig{TripRate: 2}},
		{OpenStore: open}, // invalid model
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(nil, Config{Model: mc, OpenStore: open}); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := New(context.Background(), Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return nil, nil, fmt.Errorf("no checkpoint") },
	}); err == nil {
		t.Error("failing initial OpenStore not surfaced")
	}
}

func TestServeMatchesDirectEngine(t *testing.T) {
	mc := tinyModel()
	path, w := writeCheckpoint(t, mc, 1)
	ref, err := infer.New(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3}
	want, err := ref.Generate(prompt, 8)
	if err != nil {
		t.Fatal(err)
	}

	s, ts := startServer(t, Config{
		Model: mc, OpenStore: fileOpener(path), Workers: 2,
		Retry: infer.Retry{Max: 2, Sleep: noSleep},
	})
	status, gr, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompt, MaxTokens: 8})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, msg)
	}
	if len(gr.Tokens) != 8 {
		t.Fatalf("got %d tokens, want 8", len(gr.Tokens))
	}
	for i := range want {
		if gr.Tokens[i] != want[i] {
			t.Fatalf("served tokens %v diverge from direct engine %v", gr.Tokens, want)
		}
	}
	if gr.Generation != 1 || gr.Model != mc.Name {
		t.Errorf("response metadata %+v", gr)
	}
	// A second request on the same worker must not leak KV-cache state.
	status, gr2, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompt, MaxTokens: 8})
	if status != http.StatusOK {
		t.Fatalf("second request status %d: %s", status, msg)
	}
	for i := range want {
		if gr2.Tokens[i] != want[i] {
			t.Fatalf("second serve diverged (stale KV cache?): %v vs %v", gr2.Tokens, want)
		}
	}
	st := s.Stats()
	if !st.Conserved() {
		t.Errorf("ledger not conserved: %+v", st)
	}
	if st.Served != 2 || st.Arrivals != 2 {
		t.Errorf("served %d / arrivals %d, want 2/2", st.Served, st.Arrivals)
	}
	if st.PrefetchHits == 0 {
		t.Errorf("prefetch pipeline unused: %+v", st)
	}
}

func TestBadRequests(t *testing.T) {
	mc := tinyModel()
	path, _ := writeCheckpoint(t, mc, 2)
	s, ts := startServer(t, Config{Model: mc, OpenStore: fileOpener(path), MaxTokens: 8})
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"prompt": [1,`},
		{"unknown field", `{"prompt": [1], "teperature": 2}`},
		{"empty prompt", `{"prompt": []}`},
		{"token out of vocab", `{"prompt": [1, 9999]}`},
		{"negative token", `{"prompt": [-1]}`},
		{"max_tokens above cap", `{"prompt": [1], "max_tokens": 9}`},
		{"negative max_tokens", `{"prompt": [1], "max_tokens": -2}`},
		{"negative timeout", `{"prompt": [1], "timeout_ms": -5}`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// GET on the generate route is not part of the surface.
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/generate status %d, want 405", resp.StatusCode)
	}
	st := s.Stats()
	if st.BadRequests != int64(len(cases)) {
		t.Errorf("bad requests %d, want %d", st.BadRequests, len(cases))
	}
	// Rejected-before-admission requests are not arrivals: conservation
	// holds over the admission pipeline.
	if !st.Conserved() || st.Arrivals != 0 {
		t.Errorf("bad requests leaked into the admission ledger: %+v", st)
	}
}

// blockStore lets a test hold worker engines mid-read to build up a
// queue deterministically.
type blockStore struct {
	backing infer.WeightStore
	mu      sync.Mutex
	hold    chan struct{} // non-nil: reads block until closed
}

func (b *blockStore) gate() chan struct{} {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hold
}

func (b *blockStore) setGate(ch chan struct{}) {
	b.mu.Lock()
	b.hold = ch
	b.mu.Unlock()
}

func (b *blockStore) Tensor(layer int, name string) ([]float32, error) {
	if ch := b.gate(); ch != nil {
		<-ch
	}
	return b.backing.Tensor(layer, name)
}

func TestQueueFullAndRenege(t *testing.T) {
	mc := tinyModel()
	_, w := writeCheckpoint(t, mc, 3)
	bs := &blockStore{backing: w}
	gate := make(chan struct{})
	bs.setGate(gate)

	s, ts := startServer(t, Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return bs, nil, nil },
		Workers:   1,
		MaxQueue:  1,
		MaxWait:   time.Millisecond, // queued-behind-a-blocked-worker requests renege
	})

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	// First request occupies the lone worker (blocked in storage);
	// second fills the queue.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _, _ = postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1}, MaxTokens: 2})
		}(i)
		// Wait until the request is either in service or queued before
		// sending the next.
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := s.Stats()
			if st.Admitted+int64(st.QueueDepth) > int64(i) || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Third arrival sees a full waiting line: 429 immediately.
	status, _, _ := postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1}, MaxTokens: 2})
	if status != http.StatusTooManyRequests {
		t.Errorf("queue-full arrival got %d, want 429", status)
	}
	close(gate)
	bs.setGate(nil)
	wg.Wait()
	if statuses[0] != http.StatusOK {
		t.Errorf("in-service request got %d, want 200", statuses[0])
	}
	// The queued request waited far past MaxWait while the worker was
	// blocked: it must have reneged with 503.
	if statuses[1] != http.StatusServiceUnavailable {
		t.Errorf("overdue queued request got %d, want 503 renege", statuses[1])
	}
	st := s.Stats()
	if st.ShedQueueFull != 1 || st.ShedMaxWait != 1 {
		t.Errorf("shed accounting: %+v", st)
	}
	if !st.Conserved() {
		t.Errorf("ledger not conserved: %+v", st)
	}
}

// panicStore panics on request — the per-request recovery boundary must
// turn that into a 500 and keep the daemon serving.
type panicStore struct {
	backing infer.WeightStore
	arm     sync.Mutex
	panics  bool
}

func (p *panicStore) setPanics(v bool) {
	p.arm.Lock()
	p.panics = v
	p.arm.Unlock()
}

func (p *panicStore) Tensor(layer int, name string) ([]float32, error) {
	p.arm.Lock()
	armed := p.panics
	p.arm.Unlock()
	if armed {
		panic("injected storage panic")
	}
	return p.backing.Tensor(layer, name)
}

func TestPanicRecovery(t *testing.T) {
	mc := tinyModel()
	_, w := writeCheckpoint(t, mc, 4)
	ps := &panicStore{backing: w}
	s, ts := startServer(t, Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return ps, nil, nil },
	})
	ps.setPanics(true)
	status, _, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1}, MaxTokens: 2})
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked request got %d (%s), want 500", status, msg)
	}
	ps.setPanics(false)
	status, _, msg = postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1}, MaxTokens: 2})
	if status != http.StatusOK {
		t.Fatalf("daemon did not survive the panic: %d (%s)", status, msg)
	}
	st := s.Stats()
	if st.Panics != 1 || st.Served != 1 || st.Failed != 1 {
		t.Errorf("panic accounting: %+v", st)
	}
	if !st.Conserved() {
		t.Errorf("ledger not conserved: %+v", st)
	}
}

func TestHealthEndpointsAndDrain(t *testing.T) {
	mc := tinyModel()
	path, _ := writeCheckpoint(t, mc, 5)
	s, ts := startServer(t, Config{Model: mc, OpenStore: fileOpener(path)})

	get := func(p string) int {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz = %d", got)
	}
	if got := get("/statz"); got != http.StatusOK {
		t.Errorf("/statz = %d", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("clean drain errored: %v", err)
	}
	// Draining flips readiness but not liveness, and admission sheds.
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz after drain = %d, want 200 (liveness)", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d, want 503", got)
	}
	status, _, _ := postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1}, MaxTokens: 2})
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-drain request got %d, want 503", status)
	}
	st := s.Stats()
	if st.State != "stopped" || st.ShedDraining != 1 {
		t.Errorf("post-drain stats: %+v", st)
	}
	if !st.Conserved() {
		t.Errorf("ledger not conserved: %+v", st)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestForceCancelOnDrainDeadline(t *testing.T) {
	mc := tinyModel()
	_, w := writeCheckpoint(t, mc, 6)
	bs := &blockStore{backing: w}
	gate := make(chan struct{})
	bs.setGate(gate)
	s, ts := startServer(t, Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return bs, nil, nil },
	})

	got := make(chan int, 1)
	go func() {
		status, _, _ := postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1}, MaxTokens: 2})
		got <- status
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Admitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Drain blocks on the worker, which is wedged inside a storage read —
	// context cancellation is only observed between reads, so the gate
	// must open for the force-cancel to land. Release it after the drain
	// deadline has expired.
	timer := time.AfterFunc(300*time.Millisecond, func() {
		close(gate)
		bs.setGate(nil)
	})
	defer timer.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain with a wedged request reported clean")
	}
	select {
	case status := <-got:
		if status != http.StatusServiceUnavailable {
			t.Errorf("force-cancelled request got %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("force-cancelled request never completed")
	}
	st := s.Stats()
	if st.ForceCancelled != 1 {
		t.Errorf("force-cancel accounting: %+v", st)
	}
	if !st.Conserved() {
		t.Errorf("ledger not conserved: %+v", st)
	}
}

// onceGate blocks the first Tensor read until released, signalling
// entry — so a test can hold a request mid-generation, deterministically,
// while it reloads the checkpoint underneath it.
type onceGate struct {
	backing infer.WeightStore
	enter   chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *onceGate) Tensor(layer int, name string) ([]float32, error) {
	g.once.Do(func() {
		g.enter <- struct{}{}
		<-g.release
	})
	return g.backing.Tensor(layer, name)
}

// A reload concurrent with an in-flight request must not mix weight
// generations within that request: the request is pinned to the
// generation it started on and computes every layer from it, even
// though the swapped-in checkpoint holds different weights. (Reloading
// byte-identical checkpoints cannot catch this — the two stores here
// genuinely differ.)
func TestHotReloadDoesNotMixGenerationsMidRequest(t *testing.T) {
	mc := tinyModel()
	pathA, wA := writeCheckpoint(t, mc, 21)
	pathB, wB := writeCheckpoint(t, mc, 22)
	prompt := []int{1, 2, 3}
	const n = 8
	baseline := func(w *infer.MemStore) []int {
		eng, err := infer.New(mc, w)
		if err != nil {
			t.Fatal(err)
		}
		tokens, err := eng.Generate(prompt, n)
		if err != nil {
			t.Fatal(err)
		}
		return tokens
	}
	wantA, wantB := baseline(wA), baseline(wB)
	diverge := false
	for i := range wantA {
		if wantA[i] != wantB[i] {
			diverge = true
		}
	}
	if !diverge {
		t.Fatal("checkpoints A and B generate identical tokens; the test cannot detect mixing")
	}

	// The first open serves checkpoint A behind the gate; every later
	// open (the reload) serves checkpoint B ungated.
	gate := &onceGate{enter: make(chan struct{}, 1), release: make(chan struct{})}
	var opens int32
	var mu sync.Mutex
	open := func() (infer.WeightStore, io.Closer, error) {
		mu.Lock()
		opens++
		first := opens == 1
		mu.Unlock()
		path := pathB
		if first {
			path = pathA
		}
		fs, err := infer.OpenFileStore(path)
		if err != nil {
			return nil, nil, err
		}
		if err := fs.Verify(); err != nil {
			fs.Close()
			return nil, nil, err
		}
		if first {
			gate.backing = fs
			return gate, fs, nil
		}
		return fs, fs, nil
	}

	s, ts := startServer(t, Config{Model: mc, OpenStore: open, Workers: 1})
	type result struct {
		status int
		gr     GenerateResponse
	}
	got := make(chan result, 1)
	go func() {
		status, gr, _ := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompt, MaxTokens: n})
		got <- result{status, gr}
	}()
	<-gate.enter // the request is inside generation, pinned to A
	if err := s.Reload(); err != nil {
		t.Fatalf("reload under an in-flight request: %v", err)
	}
	close(gate.release)
	r := <-got
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request failed across the reload: %d", r.status)
	}
	if r.gr.Generation != 1 {
		t.Errorf("in-flight request reported generation %d, want the pinned 1", r.gr.Generation)
	}
	for i := range wantA {
		if r.gr.Tokens[i] != wantA[i] {
			t.Fatalf("in-flight request mixed generations: got %v, want all-A %v (all-B would be %v)",
				r.gr.Tokens, wantA, wantB)
		}
	}
	// The next request computes entirely on the new checkpoint.
	status, gr, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompt, MaxTokens: n})
	if status != http.StatusOK {
		t.Fatalf("post-reload request: %d (%s)", status, msg)
	}
	if gr.Generation != 2 {
		t.Errorf("post-reload generation = %d, want 2", gr.Generation)
	}
	for i := range wantB {
		if gr.Tokens[i] != wantB[i] {
			t.Fatalf("post-reload request not on new weights: got %v, want all-B %v", gr.Tokens, wantB)
		}
	}
}

// A client that disconnects while queued lands in its own shed bucket —
// not shed_max_wait, which must stay zero when MaxWait is 0 (reneging
// disabled) — and the ledger still conserves.
func TestClientGoneWhileQueuedShedsSeparately(t *testing.T) {
	mc := tinyModel()
	_, w := writeCheckpoint(t, mc, 23)
	bs := &blockStore{backing: w}
	gate := make(chan struct{})
	bs.setGate(gate)
	s, err := New(context.Background(), Config{
		Model:     mc,
		OpenStore: func() (infer.WeightStore, io.Closer, error) { return bs, nil, nil },
		Workers:   1,
		MaxQueue:  2,
		// MaxWait 0: unbounded patience — the renege counter must stay 0.
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	// First job occupies the lone worker, blocked in storage.
	j1, status, _, _ := s.admit(context.Background(), []int{1}, 2, 0, serve.ClassInteractive)
	if j1 == nil {
		t.Fatalf("first admit shed with %d", status)
	}
	// Second job queues behind it, then its client hangs up.
	ctx2, cancel2 := context.WithCancel(context.Background())
	j2, status, _, _ := s.admit(ctx2, []int{1}, 2, 0, serve.ClassInteractive)
	if j2 == nil {
		t.Fatalf("second admit shed with %d", status)
	}
	cancel2()
	close(gate)
	bs.setGate(nil)
	<-j1.done
	<-j2.done
	if j1.err != nil {
		t.Fatalf("first job failed: %v", j1.err)
	}
	if j2.err == nil {
		t.Fatal("job with a gone client was served")
	}
	st := s.Stats()
	if st.ShedClientGone != 1 {
		t.Errorf("shed_client_gone = %d, want 1", st.ShedClientGone)
	}
	if st.ShedMaxWait != 0 {
		t.Errorf("shed_max_wait = %d with MaxWait disabled, want 0", st.ShedMaxWait)
	}
	if st.Served != 1 {
		t.Errorf("served = %d, want 1", st.Served)
	}
	if !st.Conserved() {
		t.Errorf("ledger not conserved: %+v", st)
	}
}

func TestHotReloadSwapsGenerations(t *testing.T) {
	mc := tinyModel()
	path, w := writeCheckpoint(t, mc, 7)
	ref, err := infer.New(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Generate([]int{1, 2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := startServer(t, Config{Model: mc, OpenStore: fileOpener(path)})
	status, gr, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1, 2}, MaxTokens: 6})
	if status != http.StatusOK {
		t.Fatalf("pre-reload request: %d (%s)", status, msg)
	}
	if gr.Generation != 1 {
		t.Fatalf("pre-reload generation = %d", gr.Generation)
	}
	if err := s.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}
	status, gr, msg = postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1, 2}, MaxTokens: 6})
	if status != http.StatusOK {
		t.Fatalf("post-reload request: %d (%s)", status, msg)
	}
	if gr.Generation != 2 {
		t.Errorf("post-reload generation = %d, want 2", gr.Generation)
	}
	// Same checkpoint → same tokens: the reload is invisible to outputs.
	for i := range want {
		if gr.Tokens[i] != want[i] {
			t.Fatalf("post-reload tokens diverged: %v vs %v", gr.Tokens, want)
		}
	}
	st := s.Stats()
	if st.Reloads != 1 || st.Generation != 2 {
		t.Errorf("reload stats: %+v", st)
	}
	if st.RetiredGenerations != 1 {
		t.Errorf("old generation not retired: %+v", st)
	}
	// Reloading a corrupted checkpoint must fail closed: flip a byte and
	// verify the swap is refused while serving continues on the old
	// generation.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(); err == nil {
		t.Fatal("reload of a corrupted checkpoint succeeded")
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	status, gr, msg = postGenerate(t, ts.URL, GenerateRequest{Prompt: []int{1, 2}, MaxTokens: 6})
	if status != http.StatusOK || gr.Generation != 2 {
		t.Fatalf("serving broken after refused reload: %d (%s) gen %d", status, msg, gr.Generation)
	}
	if st := s.Stats(); st.ReloadFailures != 1 {
		t.Errorf("reload failure not counted: %+v", st)
	}
}
