// Package server is the live serving daemon over the executable
// out-of-core engine: an HTTP front end with admission control
// mirroring the serve package's queueing semantics, a storage circuit
// breaker, graceful drain, and hot checkpoint reload. It is the
// production-shaped counterpart of the serve package's simulator —
// the simulator predicts brownout behavior, this package exhibits it.
package server

import (
	"fmt"
	"sync"
	"time"

	"helmsim/internal/fault"
)

// BreakerState is the circuit breaker's admission mode.
type BreakerState int32

const (
	// BreakerClosed admits everything; storage looks healthy.
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds everything; storage recently exceeded the trip
	// rate and is cooling down.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests whose
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state for /statz and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerConfig tunes the storage circuit breaker. Zero values take the
// documented defaults, so the zero config is usable.
type BreakerConfig struct {
	// Window is how many recent storage operations the failure rate is
	// computed over (default 64).
	Window int
	// MinSamples is the observation floor below which the breaker never
	// trips — a single failed read out of two must not blackout the
	// daemon (default 16).
	MinSamples int
	// TripRate is the transient-failure fraction over the window that
	// opens the breaker (default 0.5).
	TripRate float64
	// Cooldown is how long an open breaker sheds before letting probes
	// through (default 2s).
	Cooldown time.Duration
	// Probes bounds concurrent half-open probe requests (default 1).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.MinSamples == 0 {
		c.MinSamples = 16
	}
	if c.TripRate == 0 {
		c.TripRate = 0.5
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Probes == 0 {
		c.Probes = 1
	}
	return c
}

// Validate rejects nonsensical configurations (after defaulting).
func (c BreakerConfig) Validate() error {
	c = c.withDefaults()
	if c.Window < 1 {
		return fmt.Errorf("server: breaker window %d < 1", c.Window)
	}
	if c.MinSamples < 1 || c.MinSamples > c.Window {
		return fmt.Errorf("server: breaker min samples %d outside [1,%d]", c.MinSamples, c.Window)
	}
	if c.TripRate <= 0 || c.TripRate > 1 {
		return fmt.Errorf("server: breaker trip rate %v outside (0,1]", c.TripRate)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("server: negative breaker cooldown %v", c.Cooldown)
	}
	if c.Probes < 1 {
		return fmt.Errorf("server: breaker probes %d < 1", c.Probes)
	}
	return nil
}

// Breaker is a windowed-failure-rate circuit breaker over storage
// operations. Closed, it watches the transient-failure fraction of the
// last Window operations and opens when it crosses TripRate with at
// least MinSamples observed. Open, it sheds until Cooldown has passed,
// then goes half-open and admits up to Probes probe requests; a probe
// success closes it (window reset), a probe failure re-opens it for
// another cooldown. Only transient storage faults count as failures —
// corruption and validation errors are permanent and no amount of
// load-shedding fixes them, so they bypass the breaker entirely.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time // injectable clock for tests

	state    BreakerState
	ring     []bool // true = transient failure
	pos      int
	fill     int
	fails    int
	openedAt time.Time
	probing  int

	trips      int64
	reopens    int64
	recoveries int64
}

// NewBreaker builds a breaker (zero-valued fields default).
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:  cfg,
		now:  time.Now,
		ring: make([]bool, cfg.Window),
	}, nil
}

// Record feeds one storage-operation outcome into the window: nil is a
// success, a transient fault a failure; every other error is ignored
// (permanent faults are not a load signal). Safe for concurrent use.
func (b *Breaker) Record(err error) {
	failure := false
	switch {
	case err == nil:
	case fault.IsTransient(err):
		failure = true
	default:
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ring[b.pos] {
		b.fails--
	}
	b.ring[b.pos] = failure
	if failure {
		b.fails++
	}
	b.pos = (b.pos + 1) % len(b.ring)
	if b.fill < len(b.ring) {
		b.fill++
	}
	// Only a closed breaker trips off the window; open and half-open
	// transitions are governed by the cooldown clock and probe verdicts,
	// not by residual traffic admitted before the trip.
	if b.state == BreakerClosed && b.fill >= b.cfg.MinSamples &&
		float64(b.fails)/float64(b.fill) >= b.cfg.TripRate {
		b.tripLocked()
	}
}

// tripLocked opens the breaker and clears the window so the next closed
// period starts from a clean slate.
func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = 0
	b.trips++
	b.resetWindowLocked()
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.pos, b.fill, b.fails = 0, 0, 0
}

// Allow is the admission check. ok reports whether the request may
// proceed; probe reports that it was admitted as a half-open probe and
// its owner must call ProbeDone or ProbeAbort exactly once.
func (b *Breaker) Allow() (probe, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = 0
	}
	switch b.state {
	case BreakerClosed:
		return false, true
	case BreakerHalfOpen:
		if b.probing < b.cfg.Probes {
			b.probing++
			return true, true
		}
		return false, false
	default:
		return false, false
	}
}

// ProbeDone reports a probe's verdict: success closes the breaker,
// failure re-opens it for another cooldown.
func (b *Breaker) ProbeDone(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing > 0 {
		b.probing--
	}
	if b.state != BreakerHalfOpen {
		return
	}
	if ok {
		b.state = BreakerClosed
		b.recoveries++
		b.resetWindowLocked()
		return
	}
	b.tripLocked()
	b.trips-- // re-opening after a failed probe extends the same incident
	b.reopens++
}

// ProbeAbort releases a probe slot without a verdict — the probe was
// shed later in the pipeline or failed for a non-storage reason, so it
// says nothing about storage health.
func (b *Breaker) ProbeAbort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probing > 0 {
		b.probing--
	}
}

// State reports the current admission mode (advancing open→half-open if
// the cooldown has lapsed, so observers see what admission would see).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = 0
	}
	return b.state
}

// RetryAfter suggests a client back-off: the remaining cooldown while
// open (minimum one second, rounded up), one second otherwise.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if rem := b.cfg.Cooldown - b.now().Sub(b.openedAt); rem > time.Second {
			return rem.Round(time.Second)
		}
	}
	return time.Second
}

// BreakerSnapshot is the /statz view of the breaker.
type BreakerSnapshot struct {
	State       string  `json:"state"`
	Trips       int64   `json:"trips"`
	Reopens     int64   `json:"reopens"`
	Recoveries  int64   `json:"recoveries"`
	WindowFill  int     `json:"window_fill"`
	FailureRate float64 `json:"failure_rate"`
	Probing     int     `json:"probing"`
}

// Snapshot captures the breaker's state for reporting.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	rate := 0.0
	if b.fill > 0 {
		rate = float64(b.fails) / float64(b.fill)
	}
	return BreakerSnapshot{
		State:       b.state.String(),
		Trips:       b.trips,
		Reopens:     b.reopens,
		Recoveries:  b.recoveries,
		WindowFill:  b.fill,
		FailureRate: rate,
		Probing:     b.probing,
	}
}
