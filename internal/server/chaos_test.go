package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"helmsim/internal/fault"
	"helmsim/internal/infer"
)

// brownoutStore is a blackout switch over a backing store: while the
// shared flag is tripped, every read fails transiently — the storage
// incident the circuit breaker exists for. One instance wraps each
// opened generation; the flag is shared across them.
type brownoutStore struct {
	backing infer.WeightStore
	down    *atomic.Bool
}

func (b *brownoutStore) Tensor(layer int, name string) ([]float32, error) {
	if b.down.Load() {
		return nil, fmt.Errorf("brownout L%d/%s: %w", layer, name, fault.ErrTransient)
	}
	return b.backing.Tensor(layer, name)
}

// TestChaosLifecycle is the PR's acceptance test: one daemon driven
// through its whole life under -race — transient faults absorbed
// invisibly, hot reload mid-traffic with zero failed in-flight
// requests, a storage blackout tripping the breaker, half-open probe
// recovery, and a clean drain — with every served token byte-identical
// to a fault-free reference run and the admission ledger conserved.
func TestChaosLifecycle(t *testing.T) {
	mc := tinyModel()
	path, w := writeCheckpoint(t, mc, 42)

	// Fault-free reference outputs, one per distinct prompt.
	ref, err := infer.New(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	const nPrompts = 4
	const genTokens = 6
	want := make([][]int, nPrompts)
	prompts := make([][]int, nPrompts)
	for i := range prompts {
		prompts[i] = []int{1 + i, 2, 3}
		ref.Reset()
		if want[i], err = ref.Generate(prompts[i], genTokens); err != nil {
			t.Fatal(err)
		}
	}

	// The served chain: checkpoint file, CRC-verified on every open,
	// brownout switch, then a seeded 5% transient-fault injector. Each
	// reload builds a fresh injector over a fresh file handle.
	var blackout atomic.Bool
	var faultSeed atomic.Int64
	faultSeed.Store(1)
	openStore := func() (infer.WeightStore, io.Closer, error) {
		fs, err := infer.OpenFileStore(path)
		if err != nil {
			return nil, nil, err
		}
		if err := fs.Verify(); err != nil {
			fs.Close()
			return nil, nil, err
		}
		brown := &brownoutStore{backing: fs, down: &blackout}
		flaky, err := fault.NewStore(brown, fault.Plan{Seed: faultSeed.Add(1), TransientRate: 0.05})
		if err != nil {
			fs.Close()
			return nil, nil, err
		}
		return flaky, fs, nil
	}

	s, ts := startServer(t, Config{
		Model:     mc,
		OpenStore: openStore,
		Workers:   3,
		MaxQueue:  64,
		Retry:     infer.Retry{Max: 8, Sleep: noSleep},
		Breaker: BreakerConfig{
			Window: 16, MinSamples: 4, TripRate: 0.5,
			Cooldown: 20 * time.Millisecond, Probes: 1,
		},
	})

	// --- Phase 1: faults absorbed + hot reload under traffic ----------
	const rounds = 3
	const perRound = 8
	var wg sync.WaitGroup
	var failures atomic.Int64
	fire := func(i int) {
		defer wg.Done()
		p := i % nPrompts
		status, gr, msg := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompts[p], MaxTokens: genTokens})
		if status != http.StatusOK {
			failures.Add(1)
			t.Errorf("request %d failed: %d (%s)", i, status, msg)
			return
		}
		for j := range want[p] {
			if gr.Tokens[j] != want[p][j] {
				failures.Add(1)
				t.Errorf("request %d tokens diverged under faults: %v vs %v", i, gr.Tokens, want[p])
				return
			}
		}
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			wg.Add(1)
			go fire(r*perRound + i)
		}
		// Hot reload in the middle of each round's traffic.
		if err := s.Reload(); err != nil {
			t.Fatalf("round %d reload: %v", r, err)
		}
		wg.Wait()
	}
	st := s.Stats()
	if failures.Load() != 0 {
		t.Fatalf("%d in-flight requests failed across %d hot reloads", failures.Load(), st.Reloads)
	}
	if st.Reloads != rounds {
		t.Errorf("reloads = %d, want %d", st.Reloads, rounds)
	}
	if st.Generation != rounds+1 {
		t.Errorf("generation = %d after %d reloads", st.Generation, rounds)
	}
	if st.StoreTransients == 0 {
		t.Errorf("fault injector never fired; the absorption claim is vacuous: %+v", st)
	}
	if st.Served != rounds*perRound {
		t.Errorf("served = %d, want %d", st.Served, rounds*perRound)
	}
	if st.Breaker.State != "closed" {
		t.Errorf("breaker tripped on absorbed 5%% faults: %+v", st.Breaker)
	}

	// --- Phase 2: blackout trips the breaker --------------------------
	blackout.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	tripped := false
	for time.Now().Before(deadline) {
		status, _, _ := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompts[0], MaxTokens: genTokens})
		if status == http.StatusOK {
			t.Fatal("request served during total storage blackout")
		}
		if s.Stats().Breaker.Trips > 0 && s.Stats().ShedBreakerOpen > 0 {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatalf("breaker never tripped under blackout: %+v", s.Stats())
	}

	// --- Phase 3: recovery through a half-open probe ------------------
	blackout.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		status, gr, _ := postGenerate(t, ts.URL, GenerateRequest{Prompt: prompts[1], MaxTokens: genTokens})
		if status == http.StatusOK {
			for j := range want[1] {
				if gr.Tokens[j] != want[1][j] {
					t.Fatalf("post-recovery tokens diverged: %v vs %v", gr.Tokens, want[1])
				}
			}
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond) // let the cooldown lapse
	}
	if !recovered {
		t.Fatalf("daemon never recovered after the blackout lifted: %+v", s.Stats())
	}
	st = s.Stats()
	if st.Breaker.State != "closed" || st.Breaker.Recoveries == 0 {
		t.Errorf("breaker did not close through a probe: %+v", st.Breaker)
	}

	// --- Phase 4: clean drain -----------------------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("clean drain errored: %v", err)
	}
	st = s.Stats()
	if st.State != "stopped" || st.ForceCancelled != 0 {
		t.Errorf("drain was not clean: %+v", st)
	}
	if !st.Conserved() {
		t.Errorf("final ledger not conserved: arrivals %d, admitted %d, shed %d/%d/%d/%d",
			st.Arrivals, st.Admitted, st.ShedQueueFull, st.ShedMaxWait, st.ShedBreakerOpen, st.ShedDraining)
	}
	// Post-drain, the swappable store is closed: a reload must fail
	// without disturbing the stopped state.
	if err := s.Reload(); err == nil {
		t.Error("reload after drain succeeded")
	}
}
