package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"helmsim/internal/batch"
	"helmsim/internal/infer"
	"helmsim/internal/kvcache"
)

// BatchConfig enables continuous batching: instead of each worker
// owning a private engine and serving one request end to end, all
// workers feed one shared iteration-level batcher (internal/batch)
// over a paged KV cache (kvcache.Pool). Requests join and leave the
// running batch at decode-step granularity, so short generations stop
// paying for long ones, and common prompt prefixes share KV pages.
type BatchConfig struct {
	// Enabled switches the serving core to the continuous batcher.
	Enabled bool
	// MaxSeqs caps concurrently decoding sequences (default 8).
	MaxSeqs int
	// KVPages is the paged KV pool size in pages (default 512).
	KVPages int
	// PageTokens is the page granularity (default 16, vLLM's).
	PageTokens int
	// DisablePrefixReuse turns off the shared-prefix page cache (on by
	// default: zero value enables it).
	DisablePrefixReuse bool
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxSeqs == 0 {
		c.MaxSeqs = 8
	}
	if c.KVPages == 0 {
		c.KVPages = 512
	}
	if c.PageTokens == 0 {
		c.PageTokens = 16
	}
	return c
}

// Validate rejects unusable batch configurations (after defaulting).
func (c BatchConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	c = c.withDefaults()
	if c.MaxSeqs < 1 {
		return fmt.Errorf("server: batch sequence cap %d < 1", c.MaxSeqs)
	}
	if c.KVPages < 1 {
		return fmt.Errorf("server: KV page budget %d < 1", c.KVPages)
	}
	if c.PageTokens < 1 {
		return fmt.Errorf("server: KV page size %d < 1", c.PageTokens)
	}
	return nil
}

// pagesForContext is the page count a full context pins, the admission
// predicate for the shed_page_pressure bucket.
func (c BatchConfig) pagesForContext(tokens int) int {
	c = c.withDefaults()
	return (tokens + c.PageTokens - 1) / c.PageTokens
}

// batchState is one generation's batcher: the shared step engine
// pinned to the checkpoint generation it was built on, its paged pool,
// and the folded prefetch counter baselines (engine counters are
// lifetime values; the server wants deltas).
type batchState struct {
	b       *batch.Batcher
	se      *infer.StepEngine
	gen     int64
	release func()

	hits, misses, degrade int
}

// newBatchState pins the current checkpoint generation and builds a
// batcher over it. The caller owns the returned state and must
// stopBatchState it.
func (s *Server) newBatchState() (*batchState, error) {
	pinned, gen, release, err := s.store.Acquire()
	if err != nil {
		return nil, err
	}
	bc := s.cfg.Batch.withDefaults()
	se, err := infer.NewStepEnginePrefetched(s.genCtx, s.cfg.Model, breakerStore{s, pinned}, s.cfg.Retry)
	if err != nil {
		release()
		return nil, err
	}
	pool, err := kvcache.NewPool(s.cfg.Model, bc.KVPages, bc.PageTokens, !bc.DisablePrefixReuse)
	if err != nil {
		se.Close()
		release()
		return nil, err
	}
	return &batchState{
		b: batch.New(se, pool, batch.Options{
			MaxSeqs: bc.MaxSeqs,
			// The server's own queue bound plus one slot per worker: the
			// batcher's queue must never be the binding constraint, or a
			// request the server admitted would bounce with ErrBusy.
			MaxQueue: s.cfg.MaxQueue + s.cfg.Workers,
			// Share the admission predictor so the batcher's page gate
			// prices requests the same way admission did.
			Predictor: s.pred,
		}),
		se:      se,
		gen:     gen,
		release: release,
	}, nil
}

// stopBatchState quiesces a batcher: drain its queue, fold its final
// prefetch counters, close its engine, release its generation pin.
func (s *Server) stopBatchState(bs *batchState) {
	bs.b.Stop()
	s.foldBatchPrefetch(bs)
	bs.se.Close()
	bs.release()
}

// foldBatchPrefetch folds the engine's prefetch counter deltas into the
// server totals. Called under batchMu (or after the batcher stopped).
func (s *Server) foldBatchPrefetch(bs *batchState) {
	h, m := bs.se.PrefetchStats()
	d := bs.se.DegradedFetches()
	s.prefetchHits.Add(int64(h - bs.hits))
	s.prefetchMisses.Add(int64(m - bs.misses))
	s.degraded.Add(int64(d - bs.degrade))
	bs.hits, bs.misses, bs.degrade = h, m, d
}

// currentBatch snapshots the active batcher.
func (s *Server) currentBatch() *batchState {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	return s.bat
}

// serveJobBatch runs one admitted job through the shared continuous
// batcher — the batch-mode counterpart of serveJob. Generation pinning
// is per-batcher, not per-request: the batcher's engine was built on
// one generation, a hot reload installs a fresh batcher and quiesces
// this one, and in-flight submissions finish on the generation they
// started on.
func (s *Server) serveJobBatch(j *job) {
	j.queued = time.Since(j.arrived)
	if j.ctx.Err() != nil {
		s.shedClass(j.class, &s.shedClientGone)
		if j.probe {
			s.breaker.ProbeAbort()
		}
		j.status = http.StatusServiceUnavailable
		j.err = fmt.Errorf("server: client disconnected after queueing %v", j.queued.Round(time.Millisecond))
		return
	}
	if s.deadlinePassed(j) {
		s.shedDeadlineJob(j)
		return
	}
	if s.cfg.MaxWait > 0 && j.queued > s.cfg.MaxWait {
		s.shedMaxWait.Add(1)
		s.classes[j.class].shedMaxWait.Add(1)
		if j.probe {
			s.breaker.ProbeAbort()
		}
		j.status = http.StatusServiceUnavailable
		j.retryAfter = time.Second
		j.err = fmt.Errorf("server: reneged after queueing %v", j.queued.Round(time.Millisecond))
		return
	}
	s.admitted.Add(1)
	s.classes[j.class].admitted.Add(1)

	ctx, cancel := s.requestContext(j)
	stop := context.AfterFunc(s.genCtx, cancel)
	defer func() {
		stop()
		cancel()
	}()

	start := time.Now()
	var tokens []int
	var gen int64
	var err error
	// A hot reload may stop the batcher between our snapshot and our
	// Submit; the successor batcher serves the retry.
	for attempt := 0; ; attempt++ {
		bs := s.currentBatch()
		gen = bs.gen
		tokens, err = bs.b.SubmitClass(ctx, j.prompt, j.maxTokens, j.class)
		if !errors.Is(err, batch.ErrStopped) || attempt >= 2 {
			break
		}
	}
	j.service = time.Since(start)

	if err != nil {
		s.fail(j, err)
		if errors.Is(err, kvcache.ErrOutOfPages) {
			// Page pressure the admission predicate could not foresee
			// (competition, not request size). Conservation note: this
			// request was already counted admitted, so it stays in the
			// failed column, not a shed bucket.
			j.status = http.StatusServiceUnavailable
			j.retryAfter = time.Second
		}
		return
	}
	j.tokens = tokens
	j.generation = gen
	s.served.Add(1)
	if j.probe {
		s.breaker.ProbeDone(true)
	}
}

// rebuildBatcher installs a fresh batcher on the (just swapped)
// current generation and quiesces the old one: queued and in-flight
// submissions drain on the generation they started on while new
// arrivals land on the new one.
func (s *Server) rebuildBatcher() error {
	nbs, err := s.newBatchState()
	if err != nil {
		return fmt.Errorf("server: rebuilding batcher after reload: %w", err)
	}
	s.batchMu.Lock()
	old := s.bat
	s.bat = nbs
	s.batchMu.Unlock()
	if old != nil {
		s.stopBatchState(old)
	}
	return nil
}
