package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"helmsim/internal/batch"
	"helmsim/internal/fault"
	"helmsim/internal/infer"
	"helmsim/internal/model"
	"helmsim/internal/serve"
)

// Config describes a serving daemon.
type Config struct {
	// Model is the architecture served; every checkpoint opened by
	// OpenStore must match it.
	Model model.Config
	// OpenStore opens (and should CRC-verify) a fresh weight store. It is
	// called once at startup and once per hot reload; the returned closer
	// (nil allowed) runs after the store's last in-flight reader.
	OpenStore func() (infer.WeightStore, io.Closer, error)
	// Workers is the engine pool size (default 1). Each worker owns one
	// prefetched engine; all share the store chain.
	Workers int
	// MaxQueue bounds the waiting line, mirroring serve.QueueConfig: an
	// arrival finding MaxQueue requests waiting is shed with 429
	// (default 64).
	MaxQueue int
	// MaxWait bounds queueing delay, mirroring serve.QueueConfig: a
	// request that waited longer reneges with 503 when a worker finally
	// reaches it (0 = unbounded patience).
	MaxWait time.Duration
	// MaxTokens caps per-request generation length (default 64).
	MaxTokens int
	// RequestTimeout is the server-side deadline per admitted request
	// (0 = none); clients may request a tighter one.
	RequestTimeout time.Duration
	// Retry is the foreground retry policy absorbing transient storage
	// faults under each engine.
	Retry infer.Retry
	// Breaker tunes the storage circuit breaker (zero values default).
	Breaker BreakerConfig
	// Batch switches the serving core to continuous batching over a
	// paged KV cache: workers feed one shared batcher instead of each
	// owning a whole-request engine.
	Batch BatchConfig
	// Cost tunes token-budget admission, per-class budgets, and
	// brownout overload control (zero value: count-only admission, no
	// brownout).
	Cost CostConfig
	// DrainRetryAfter is the Retry-After advertised on drain-mode 503s —
	// the /readyz readiness refusal and queue-closed admission sheds —
	// so probers and clients back off from a draining replica on the
	// same uniform contract breaker-open responses already follow
	// (default 1s).
	DrainRetryAfter time.Duration
	// OnStateChange, when non-nil, observes lifecycle transitions: it is
	// called with "draining" when admission stops and "stopped" once the
	// drain finalizes. A gateway fronting an in-process replica uses it
	// to pull the replica from rotation the moment its drain begins,
	// without waiting for the next readiness probe. Calls are
	// synchronous; the hook must not call back into the server.
	OnStateChange func(state string)
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 64
	}
	if c.DrainRetryAfter == 0 {
		c.DrainRetryAfter = time.Second
	}
	c.Cost = c.Cost.withDefaults()
	return c
}

// Validate rejects unusable configurations (after defaulting).
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.OpenStore == nil {
		return fmt.Errorf("server: nil OpenStore")
	}
	if c.Workers < 1 {
		return fmt.Errorf("server: worker count %d < 1", c.Workers)
	}
	if c.MaxQueue < 1 {
		return fmt.Errorf("server: queue bound %d < 1", c.MaxQueue)
	}
	if c.MaxWait < 0 {
		return fmt.Errorf("server: negative wait bound %v", c.MaxWait)
	}
	if c.MaxTokens < 1 {
		return fmt.Errorf("server: token cap %d < 1", c.MaxTokens)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("server: negative request timeout %v", c.RequestTimeout)
	}
	if c.DrainRetryAfter < 0 {
		return fmt.Errorf("server: negative drain retry-after %v", c.DrainRetryAfter)
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if err := c.Batch.Validate(); err != nil {
		return err
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	return c.Breaker.Validate()
}

// lifecycle states.
const (
	stateServing int32 = iota
	stateDraining
	stateStopped
)

// job is one admitted-to-queue request, handed from the HTTP handler to
// a worker. The worker fills the result fields and closes done; the
// handler alone writes the HTTP response.
type job struct {
	ctx       context.Context
	prompt    []int
	maxTokens int
	timeout   time.Duration // client-requested, already clamped
	probe     bool          // breaker half-open probe
	arrived   time.Time
	class     serve.Class
	est       int // admission cost estimate in tokens (released once settled)

	tokens     []int
	err        error
	status     int // HTTP status to report err with
	retryAfter time.Duration
	generation int64
	queued     time.Duration
	service    time.Duration
	done       chan struct{}
}

// Server is the live daemon: admission control in front of a worker
// pool of prefetched engines over one swappable, breaker-observed,
// retry-wrapped store chain.
type Server struct {
	cfg     Config
	store   *infer.SwappableStore
	breaker *Breaker

	// genCtx anchors every engine and in-flight generation; forceCancel
	// fires when a drain deadline expires.
	genCtx      context.Context
	forceCancel context.CancelFunc

	mu      sync.Mutex
	state   int32
	queue   chan *job
	waiting int

	wg          sync.WaitGroup
	workersDone chan struct{}
	drainOnce   sync.Once
	drainDone   chan struct{} // closed after finalization; drainErr is set before
	drainErr    error

	// reloadMu serializes Reload calls: concurrent SIGHUPs must not
	// interleave their open/swap pairs.
	reloadMu sync.Mutex

	// batchMu guards the active continuous batcher (batch mode only);
	// a hot reload swaps in a successor built on the new generation.
	batchMu sync.Mutex
	bat     *batchState

	// Conservation ledger: arrivals == admitted + every shed bucket, the
	// same invariant serve.SimulateQueue's metrics satisfy, checked by
	// the same predicate.
	arrivals         atomic.Int64
	admitted         atomic.Int64
	shedQueueFull    atomic.Int64
	shedMaxWait      atomic.Int64
	shedClientGone   atomic.Int64
	shedBreakerOpen  atomic.Int64
	shedDraining     atomic.Int64
	shedPagePressure atomic.Int64
	shedDeadline     atomic.Int64
	shedBrownout     atomic.Int64
	shedCostBudget   atomic.Int64

	// Per-class ledger rows (indexed by serve.Class) and the cost/
	// brownout state behind the token-budget admission pipeline.
	classes     [serve.NumClasses]classLedger
	cost        costState // guarded by mu
	classBudget [serve.NumClasses]int64
	pred        *serve.Predictor

	served         atomic.Int64
	failed         atomic.Int64
	panics         atomic.Int64
	forceCancelled atomic.Int64
	reloads        atomic.Int64
	reloadFailures atomic.Int64
	badRequests    atomic.Int64

	storeAccesses   atomic.Int64
	storeTransients atomic.Int64
	prefetchHits    atomic.Int64
	prefetchMisses  atomic.Int64
	degraded        atomic.Int64
}

// breakerStore sits between the retry layer and the worker's pinned
// generation: every raw storage attempt (including each retry) feeds
// the breaker's failure window and the access counters.
type breakerStore struct {
	s       *Server
	backing infer.WeightStore
}

func (bs breakerStore) Tensor(layer int, name string) ([]float32, error) {
	d, err := bs.backing.Tensor(layer, name)
	bs.s.storeAccesses.Add(1)
	if err != nil && fault.IsTransient(err) {
		bs.s.storeTransients.Add(1)
	}
	bs.s.breaker.Record(err)
	return d, err
}

// TensorInto implements infer.IntoStore so the engines' buffer
// recycling survives the instrumentation layer; accounting is identical
// to Tensor.
func (bs breakerStore) TensorInto(layer int, name string, dst []float32) ([]float32, error) {
	is, ok := bs.backing.(infer.IntoStore)
	if !ok {
		return bs.Tensor(layer, name)
	}
	d, err := is.TensorInto(layer, name, dst)
	bs.s.storeAccesses.Add(1)
	if err != nil && fault.IsTransient(err) {
		bs.s.storeTransients.Add(1)
	}
	bs.s.breaker.Record(err)
	return d, err
}

// pinStore is the indirection between a worker's engine (built once per
// generation, reused across requests) and the per-request generation
// pin: serveJob points it at the handle SwappableStore.Acquire returned
// before running a request and clears it after the prefetcher settles,
// so every fetch a request triggers — foreground, retry, or background
// prefetch — reads the generation the request started on, and a
// concurrent Reload can never mix checkpoints within one request.
type pinStore struct {
	mu  sync.Mutex
	cur infer.WeightStore
}

func (p *pinStore) set(w infer.WeightStore) {
	p.mu.Lock()
	p.cur = w
	p.mu.Unlock()
}

func (p *pinStore) Tensor(layer int, name string) ([]float32, error) {
	p.mu.Lock()
	c := p.cur
	p.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("server: L%d/%s fetched outside a pinned request", layer, name)
	}
	return c.Tensor(layer, name)
}

// TensorInto implements infer.IntoStore, passing the caller's buffer
// through to the pinned generation (which keeps any mmap view under it
// alive for the duration of the decode).
func (p *pinStore) TensorInto(layer int, name string, dst []float32) ([]float32, error) {
	p.mu.Lock()
	c := p.cur
	p.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("server: L%d/%s fetched outside a pinned request", layer, name)
	}
	if is, ok := c.(infer.IntoStore); ok {
		return is.TensorInto(layer, name, dst)
	}
	return c.Tensor(layer, name)
}

// New opens the initial store via cfg.OpenStore and starts the worker
// pool. ctx anchors the daemon: engines, prefetchers, and force-drain
// all descend from it.
func New(ctx context.Context, cfg Config) (*Server, error) {
	if ctx == nil {
		return nil, fmt.Errorf("server: nil context")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	br, err := NewBreaker(cfg.Breaker)
	if err != nil {
		return nil, err
	}
	w, closer, err := cfg.OpenStore()
	if err != nil {
		return nil, fmt.Errorf("server: opening initial store: %w", err)
	}
	sw, err := infer.NewSwappable(w, closer)
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		store:       sw,
		breaker:     br,
		queue:       make(chan *job, cfg.MaxQueue),
		workersDone: make(chan struct{}),
		drainDone:   make(chan struct{}),
		classBudget: resolveClassBudgets(cfg.Cost.ClassBudgets),
		pred:        serve.NewPredictor(cfg.Cost.PredictorSeed),
	}
	s.cost.brown = (&serve.Brownout{
		Budget:  cfg.Cost.TokenBudget,
		High:    cfg.Cost.BrownoutHigh,
		Low:     cfg.Cost.BrownoutLow,
		Sustain: cfg.Cost.BrownoutSustain,
	}).Defaulted()
	s.genCtx, s.forceCancel = context.WithCancel(ctx)
	if cfg.Batch.Enabled {
		bs, err := s.newBatchState()
		if err != nil {
			s.forceCancel()
			sw.Close()
			return nil, fmt.Errorf("server: building continuous batcher: %w", err)
		}
		s.bat = bs
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.workersDone)
	}()
	return s, nil
}

// admit runs the admission pipeline under the lock, in the documented
// shedding order: drain state and page pressure (request-size and
// lifecycle verdicts), then brownout (class-aware early rejection with
// headroom to spare), then the cost budgets, then the queue bound, then
// the breaker — so a shed request never consumes a probe slot. Every
// verdict lands in one global bucket and one per-class bucket; both
// ledgers conserve. It returns the job on success, or (status,
// retryAfter, reason) on shed.
func (s *Server) admit(ctx context.Context, prompt []int, maxTokens int, timeout time.Duration, class serve.Class) (*job, int, time.Duration, string) {
	est := s.pred.EstimateCost(class, len(prompt), maxTokens)
	s.arrivals.Add(1)
	s.classes[class].arrivals.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateServing {
		// Queue-closed sheds carry the same Retry-After contract as
		// breaker-open ones: a prober or client that sees the header backs
		// off uniformly, whatever the daemon's reason for refusing.
		s.shedClass(class, &s.shedDraining)
		return nil, http.StatusServiceUnavailable, s.cfg.DrainRetryAfter, "draining"
	}
	// Page pressure is a request-size verdict, not a load verdict: a
	// context too large for the whole paged pool can never be served, no
	// matter how long it waits, so it sheds before the queue bound.
	if s.cfg.Batch.Enabled && s.cfg.Batch.pagesForContext(len(prompt)+maxTokens) > s.cfg.Batch.withDefaults().KVPages {
		s.shedClass(class, &s.shedPagePressure)
		return nil, http.StatusServiceUnavailable, 0, "context exceeds the paged KV budget"
	}
	// Brownout observes every arrival and rejects classes below its
	// level before any hard cap binds: degrade by class, with an honest
	// Retry-After, instead of saturating and shedding blindly.
	if level := s.cost.brown.Observe(int(s.cost.backlog)); int(class) < level {
		s.shedBrownout.Add(1)
		s.classes[class].shedBrownout.Add(1)
		return nil, http.StatusServiceUnavailable, s.cfg.Cost.BrownoutRetryAfter,
			fmt.Sprintf("brownout: %s class shed under sustained overload", class)
	}
	// Token budgets price admission in estimated tokens: the total
	// backlog cap first, then the class's own share when configured.
	if s.cfg.Cost.TokenBudget > 0 && s.cost.backlog+int64(est) > int64(s.cfg.Cost.TokenBudget) {
		s.shedCostBudget.Add(1)
		s.classes[class].shedCostBudget.Add(1)
		return nil, http.StatusTooManyRequests, time.Second,
			fmt.Sprintf("estimated cost %d tokens exceeds remaining budget", est)
	}
	if cb := s.classBudget[class]; cb > 0 && s.cost.classBacklog[class]+int64(est) > cb {
		s.shedCostBudget.Add(1)
		s.classes[class].shedCostBudget.Add(1)
		return nil, http.StatusTooManyRequests, time.Second,
			fmt.Sprintf("estimated cost %d tokens exceeds the %s class budget", est, class)
	}
	if s.waiting >= s.cfg.MaxQueue {
		s.shedQueueFull.Add(1)
		s.classes[class].shedQueueFull.Add(1)
		return nil, http.StatusTooManyRequests, time.Second, "queue full"
	}
	probe, ok := s.breaker.Allow()
	if !ok {
		s.shedClass(class, &s.shedBreakerOpen)
		return nil, http.StatusServiceUnavailable, s.breaker.RetryAfter(), "storage circuit breaker open"
	}
	j := &job{
		ctx: ctx, prompt: prompt, maxTokens: maxTokens, timeout: timeout,
		probe: probe, arrived: time.Now(), done: make(chan struct{}),
		class: class, est: est,
	}
	s.waiting++
	s.cost.classWaiting[class]++
	s.cost.backlog += int64(est)
	s.cost.classBacklog[class] += int64(est)
	// Channel capacity equals the queue bound and waiting is tracked
	// under the same lock, so this send cannot block.
	s.queue <- j
	return j, 0, 0, ""
}

// workerState is one worker's engine and pin indirection, plus the
// prefetch counter values already folded into the server totals (engine
// counters are lifetime values; the server wants deltas).
type workerState struct {
	eng                   *infer.Engine
	pin                   *pinStore
	gen                   int64
	hits, misses, degrade int
}

// closeEngine folds the engine's final counter deltas and releases it.
// The pin indirection survives: the next engine is built over it again.
func (s *Server) closeEngine(w *workerState) {
	if w.eng == nil {
		return
	}
	s.foldPrefetch(w)
	w.eng.Close()
	*w = workerState{pin: w.pin}
}

func (s *Server) foldPrefetch(w *workerState) {
	h, m := w.eng.PrefetchStats()
	d := w.eng.DegradedFetches()
	s.prefetchHits.Add(int64(h - w.hits))
	s.prefetchMisses.Add(int64(m - w.misses))
	s.degraded.Add(int64(d - w.degrade))
	w.hits, w.misses, w.degrade = h, m, d
}

// worker serves jobs until the queue closes, owning one engine that is
// rebuilt on checkpoint swap (fresh weights, empty prefetch pipeline)
// and after a panic.
func (s *Server) worker() {
	defer s.wg.Done()
	ws := workerState{pin: &pinStore{}}
	defer s.closeEngine(&ws)
	for j := range s.queue {
		s.mu.Lock()
		s.waiting--
		s.cost.classWaiting[j.class]--
		s.mu.Unlock()
		if s.cfg.Batch.Enabled {
			s.serveJobBatch(j)
		} else {
			s.serveJob(&ws, j)
		}
		// The job settled one way or another: its admitted cost leaves
		// the backlog, and the brownout machine sees the drain.
		s.releaseCost(j)
		close(j.done)
	}
}

// serveJob runs one admitted job on the worker's engine.
func (s *Server) serveJob(ws *workerState, j *job) {
	j.queued = time.Since(j.arrived)
	// A client that hung up while queued gets its own shed bucket:
	// serving it is work nobody receives, but it is not a MaxWait renege
	// — that mechanism may be disabled entirely (MaxWait 0 = unbounded
	// patience) while clients still disconnect.
	if j.ctx.Err() != nil {
		s.shedClass(j.class, &s.shedClientGone)
		if j.probe {
			s.breaker.ProbeAbort()
		}
		j.status = http.StatusServiceUnavailable
		j.err = fmt.Errorf("server: client disconnected after queueing %v", j.queued.Round(time.Millisecond))
		return
	}
	// Deadline-aware early shed: work whose effective deadline already
	// passed while it queued is never started — serving it would burn
	// capacity on an answer nobody is waiting for.
	if s.deadlinePassed(j) {
		s.shedDeadlineJob(j)
		return
	}
	// Renege: the request waited past its patience — the simulator's
	// MaxWait semantics live.
	if s.cfg.MaxWait > 0 && j.queued > s.cfg.MaxWait {
		s.shedMaxWait.Add(1)
		s.classes[j.class].shedMaxWait.Add(1)
		if j.probe {
			s.breaker.ProbeAbort()
		}
		j.status = http.StatusServiceUnavailable
		j.retryAfter = time.Second
		j.err = fmt.Errorf("server: reneged after queueing %v", j.queued.Round(time.Millisecond))
		return
	}
	s.admitted.Add(1)
	s.classes[j.class].admitted.Add(1)

	// Pin the serving generation for the whole request: every fetch the
	// engine or its prefetcher issues below reads this generation, so a
	// concurrent Reload cannot mix checkpoints within one request.
	pinned, gen, release, err := s.store.Acquire()
	if err != nil {
		s.fail(j, err)
		return
	}
	defer release()

	// Rebuild the engine when the served generation changed: the layer
	// memo and prefetch pipeline hold old-generation tensors, and the
	// reload contract is that every post-swap request computes entirely
	// on new weights.
	if ws.eng != nil && ws.gen != gen {
		s.closeEngine(ws)
	}
	ws.pin.set(pinned)
	defer ws.pin.set(nil) // runs before the deferred release
	if ws.eng == nil {
		e, err := infer.NewPrefetchedResilientContext(s.genCtx, s.cfg.Model, breakerStore{s, ws.pin}, s.cfg.Retry)
		if err != nil {
			s.fail(j, err)
			return
		}
		ws.eng, ws.gen = e, gen
	}

	ctx, cancel := s.requestContext(j)
	// Force-drain reaches into in-flight generations through the daemon
	// context without parenting every request under it.
	stop := context.AfterFunc(s.genCtx, cancel)
	defer func() {
		stop()
		cancel()
	}()

	start := time.Now()
	tokens, err := s.generate(ws.eng, ctx, j)
	j.service = time.Since(start)
	// Join the background prefetch before the pin drops: no fetch issued
	// under this request may outlive its generation pin.
	ws.eng.SettlePrefetch()
	s.foldPrefetch(ws)

	if err != nil {
		if errors.Is(err, errPanicked) {
			// The engine's internal state is suspect; rebuild before the
			// next request.
			s.closeEngine(ws)
		}
		s.fail(j, err)
		return
	}
	j.tokens = tokens
	j.generation = gen
	s.served.Add(1)
	if j.probe {
		s.breaker.ProbeDone(true)
	}
}

// requestContext derives the per-request context: the client's context,
// tightened by the server-side deadline and any (clamped) client-asked
// timeout.
func (s *Server) requestContext(j *job) (context.Context, context.CancelFunc) {
	timeout := s.cfg.RequestTimeout
	if j.timeout > 0 && (timeout == 0 || j.timeout < timeout) {
		timeout = j.timeout
	}
	if timeout > 0 {
		return context.WithTimeout(j.ctx, timeout)
	}
	return context.WithCancel(j.ctx)
}

// errPanicked marks a recovered per-request panic.
var errPanicked = errors.New("server: request panicked")

// generate runs one generation with panic recovery; a panic fails the
// request, not the daemon.
func (s *Server) generate(eng *infer.Engine, ctx context.Context, j *job) (tokens []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			err = fmt.Errorf("%w: %v", errPanicked, r)
		}
	}()
	eng.Reset()
	return eng.GenerateContext(ctx, j.prompt, j.maxTokens)
}

// fail classifies an error into the job's response fields and settles
// breaker-probe accounting.
func (s *Server) fail(j *job, err error) {
	s.failed.Add(1)
	j.err = err
	switch {
	case s.genCtx.Err() != nil && errors.Is(err, context.Canceled):
		// Force-drain cut the request off.
		s.forceCancelled.Add(1)
		j.status = http.StatusServiceUnavailable
		j.retryAfter = time.Second
	case errors.Is(err, context.DeadlineExceeded):
		j.status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// Client went away mid-service; status is moot but recorded.
		j.status = http.StatusServiceUnavailable
	case fault.IsTransient(err):
		// Retries exhausted against sick storage.
		j.status = http.StatusServiceUnavailable
		j.retryAfter = s.breaker.RetryAfter()
	default:
		j.status = http.StatusInternalServerError
	}
	if j.probe {
		if fault.IsTransient(err) {
			s.breaker.ProbeDone(false)
		} else {
			// Timeouts, cancellations, panics: no storage verdict.
			s.breaker.ProbeAbort()
		}
	}
}

// ErrStaleClose marks a Reload that installed the new generation but
// failed to close the previous one: serving has moved to the new
// checkpoint — only the old store's cleanup misfired. Callers should
// treat it as a warning, not a failed reload.
var ErrStaleClose = errors.New("server: old generation close failed after reload")

// Reload hot-swaps the served checkpoint: open + verify a fresh store,
// then atomically install it; the old generation closes after its last
// pinned reader. In-flight requests finish on the generation they
// started on; later requests (and rebuilt engines) see the new one.
// A nil return means the new generation is serving; an ErrStaleClose
// return means it is serving but the old store's close failed; any
// other error means the serving generation is unchanged.
func (s *Server) Reload() error {
	// Serialized so a rejected swap cannot observe a concurrent call's
	// generation bump and be misclassified as success.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	w, closer, err := s.cfg.OpenStore()
	if err != nil {
		s.reloadFailures.Add(1)
		return fmt.Errorf("server: reload open: %w", err)
	}
	installed, err := s.store.Swap(w, closer)
	if !installed {
		// Swap rejected (daemon closed); release the orphaned store.
		s.reloadFailures.Add(1)
		if closer != nil {
			closer.Close()
		}
		return fmt.Errorf("server: reload swap: %w", err)
	}
	s.reloads.Add(1)
	if s.cfg.Batch.Enabled {
		// Quiesce-and-replace: a fresh batcher is built on the new
		// generation, then the old one drains its in-flight submissions
		// on the generation they started on. On failure the swap stands
		// (worker-mode semantics) but batch requests keep serving the old
		// generation — surfaced as a reload failure.
		if rerr := s.rebuildBatcher(); rerr != nil {
			s.reloadFailures.Add(1)
			return rerr
		}
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStaleClose, err)
	}
	return nil
}

// Drain stops admission and waits for queued and in-flight requests to
// finish. When ctx expires first, in-flight generations are
// force-cancelled (counted in Stats.ForceCancelled) and the ctx error
// is returned. Drain is idempotent; concurrent calls all wait. The
// store chain is closed once workers exit.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	flipped := s.state == stateServing
	if flipped {
		s.state = stateDraining
		// Workers drain what was already admitted, then exit.
		close(s.queue)
	}
	s.mu.Unlock()
	// Only the caller that flipped the state notifies, so concurrent
	// drains deliver each transition exactly once.
	if flipped && s.cfg.OnStateChange != nil {
		s.cfg.OnStateChange("draining")
	}

	var derr error
	select {
	case <-s.workersDone:
		// Checked first so a drain that finished exactly at the deadline
		// still reports clean.
	default:
		select {
		case <-s.workersDone:
		case <-ctx.Done():
			s.forceCancel()
			<-s.workersDone
			derr = fmt.Errorf("server: drain deadline expired, in-flight requests cancelled: %w", ctx.Err())
		}
	}

	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.state = stateStopped
		s.mu.Unlock()
		s.forceCancel() // release context resources even on a clean drain
		// Workers have exited, so no submission can race the teardown.
		s.batchMu.Lock()
		bs := s.bat
		s.bat = nil
		s.batchMu.Unlock()
		if bs != nil {
			s.stopBatchState(bs)
		}
		cerr := s.store.Close()
		if derr == nil {
			derr = cerr
		}
		s.drainErr = derr
		if s.cfg.OnStateChange != nil {
			s.cfg.OnStateChange("stopped")
		}
		close(s.drainDone)
	})
	<-s.drainDone
	return s.drainErr
}

// Draining reports whether the daemon has left the serving state.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state != stateServing
}

// StatzSchemaVersion identifies the /statz JSON schema (the Stats
// struct, documented field by field in DESIGN.md §3i). It bumps
// whenever a field is renamed, removed, or changes meaning — additive
// fields do not bump it — so a prober can refuse a replica speaking an
// incompatible schema instead of misreading it.
//
// v3 adds the cost-admission fields (cost backlog, brownout state, the
// deadline/brownout/cost-budget shed buckets, and per-class ledger
// rows). That is additive on the wire, but it changes the meaning of
// the conservation identity — a v2 reader summing the v2 shed buckets
// against arrivals would conclude a healthy v3 replica leaks requests —
// so the version bumps. Probers accept the window
// [StatzSchemaVersionMin, StatzSchemaVersion] and must simply treat the
// v3 fields as zero on a v2 document.
const (
	StatzSchemaVersion    = 3
	StatzSchemaVersionMin = 2
)

// Stats is the /statz document. The machine-readable fields a fleet
// prober keys on — schema version, lifecycle state, checkpoint
// generation, queue depth, breaker state, and the batcher's pinned
// generation — are top-level and stable; see DESIGN.md §3i for the
// schema contract.
type Stats struct {
	SchemaVersion      int    `json:"statz_version"`
	State              string `json:"state"`
	Draining           bool   `json:"draining"`
	Workers            int    `json:"workers"`
	QueueDepth         int    `json:"queue_depth"`
	Generation         int64  `json:"generation"`
	RetiredGenerations int64  `json:"retired_generations"`
	// BreakerState duplicates Breaker.State at top level so shallow
	// probers need not descend into the breaker snapshot.
	BreakerState string `json:"breaker_state"`
	// BatchGeneration is the checkpoint generation the active continuous
	// batcher was built on (0 outside batch mode or after teardown). It
	// trails Generation between a hot swap and the batcher rebuild, so a
	// prober can observe reload convergence.
	BatchGeneration int64 `json:"batch_generation"`

	Arrivals         int64 `json:"arrivals"`
	Admitted         int64 `json:"admitted"`
	Served           int64 `json:"served"`
	Failed           int64 `json:"failed"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedMaxWait      int64 `json:"shed_max_wait"`
	ShedClientGone   int64 `json:"shed_client_gone"`
	ShedBreakerOpen  int64 `json:"shed_breaker_open"`
	ShedDraining     int64 `json:"shed_draining"`
	ShedPagePressure int64 `json:"shed_page_pressure"`
	ShedDeadline     int64 `json:"shed_deadline"`
	ShedBrownout     int64 `json:"shed_brownout"`
	ShedCostBudget   int64 `json:"shed_cost_budget"`
	BadRequests      int64 `json:"bad_requests"`
	Panics           int64 `json:"panics"`
	ForceCancelled   int64 `json:"force_cancelled"`
	Reloads          int64 `json:"reloads"`
	ReloadFailures   int64 `json:"reload_failures"`

	// CostBacklog is the admitted-but-unsettled estimated-token backlog
	// against TokenBudget; BrownoutLevel is the number of classes
	// currently rejected at admission (0 = no brownout). Together they
	// are the backpressure signal a fleet gateway routes and sheds on.
	CostBacklog     int64 `json:"cost_backlog"`
	TokenBudget     int   `json:"token_budget"`
	BrownoutLevel   int   `json:"brownout_level"`
	BrownoutEntries int64 `json:"brownout_entries"`
	BrownoutExits   int64 `json:"brownout_exits"`
	// Classes is the per-class admission ledger, one row per service
	// class, each row conserved by the same predicate the mixed-class
	// simulator satisfies (serve.ClassLedgerConserved).
	Classes []serve.ClassCounts `json:"classes"`

	StoreAccesses   int64 `json:"store_accesses"`
	StoreTransients int64 `json:"store_transients"`
	PrefetchHits    int64 `json:"prefetch_hits"`
	PrefetchMisses  int64 `json:"prefetch_misses"`
	DegradedFetches int64 `json:"degraded_fetches"`

	Breaker BreakerSnapshot `json:"breaker"`
	// Batch is the continuous batcher's snapshot — occupancy, page
	// utilization, prefix-cache hit rate — present only in batch mode.
	Batch *batch.Stats `json:"batch,omitempty"`
}

// Conserved checks the live ledger against the exact predicate the
// queueing simulator's metrics satisfy: every arrival is admitted or
// lands in exactly one shed bucket — globally, and again within every
// class row, with the class rows' arrivals summing back to the global
// arrival count (no request changes class between ledgers).
func (st Stats) Conserved() bool {
	if !serve.Conserved(int(st.Arrivals), int(st.Admitted),
		int(st.ShedQueueFull), int(st.ShedMaxWait), int(st.ShedClientGone),
		int(st.ShedBreakerOpen), int(st.ShedDraining), int(st.ShedPagePressure),
		int(st.ShedDeadline), int(st.ShedBrownout), int(st.ShedCostBudget)) {
		return false
	}
	if !serve.ClassLedgerConserved(st.Classes) {
		return false
	}
	var classArrivals int64
	for _, row := range st.Classes {
		classArrivals += row.Arrivals
	}
	return classArrivals == st.Arrivals
}

// Stats snapshots the daemon's counters. Note the snapshot is not
// atomic across counters: under live traffic, arrivals may be ahead of
// the bucket that arrival will land in, so Conserved is guaranteed only
// at quiescence.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	state := s.state
	depth := s.waiting
	costBacklog := s.cost.backlog
	brownLevel := s.cost.brown.Level()
	brownEntries := s.cost.brown.Entries()
	brownExits := s.cost.brown.Exits()
	s.mu.Unlock()
	name := "serving"
	switch state {
	case stateDraining:
		name = "draining"
	case stateStopped:
		name = "stopped"
	}
	var bst *batch.Stats
	var batchGen int64
	s.batchMu.Lock()
	if s.bat != nil {
		s.foldBatchPrefetch(s.bat)
		snap := s.bat.b.Stats()
		bst = &snap
		batchGen = s.bat.gen
	}
	s.batchMu.Unlock()
	return Stats{
		SchemaVersion:      StatzSchemaVersion,
		State:              name,
		Draining:           state != stateServing,
		Workers:            s.cfg.Workers,
		QueueDepth:         depth,
		Generation:         s.store.Generation(),
		RetiredGenerations: s.store.RetiredGenerations(),
		BreakerState:       s.breaker.State().String(),
		BatchGeneration:    batchGen,
		Arrivals:           s.arrivals.Load(),
		Admitted:           s.admitted.Load(),
		Served:             s.served.Load(),
		Failed:             s.failed.Load(),
		ShedQueueFull:      s.shedQueueFull.Load(),
		ShedMaxWait:        s.shedMaxWait.Load(),
		ShedClientGone:     s.shedClientGone.Load(),
		ShedBreakerOpen:    s.shedBreakerOpen.Load(),
		ShedDraining:       s.shedDraining.Load(),
		ShedPagePressure:   s.shedPagePressure.Load(),
		ShedDeadline:       s.shedDeadline.Load(),
		ShedBrownout:       s.shedBrownout.Load(),
		ShedCostBudget:     s.shedCostBudget.Load(),
		CostBacklog:        costBacklog,
		TokenBudget:        s.cfg.Cost.TokenBudget,
		BrownoutLevel:      brownLevel,
		BrownoutEntries:    brownEntries,
		BrownoutExits:      brownExits,
		Classes:            s.classRows(),
		BadRequests:        s.badRequests.Load(),
		Panics:             s.panics.Load(),
		ForceCancelled:     s.forceCancelled.Load(),
		Reloads:            s.reloads.Load(),
		ReloadFailures:     s.reloadFailures.Load(),
		StoreAccesses:      s.storeAccesses.Load(),
		StoreTransients:    s.storeTransients.Load(),
		PrefetchHits:       s.prefetchHits.Load(),
		PrefetchMisses:     s.prefetchMisses.Load(),
		DegradedFetches:    s.degraded.Load(),
		Breaker:            s.breaker.Snapshot(),
		Batch:              bst,
	}
}
