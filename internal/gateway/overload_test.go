package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"helmsim/internal/fault"
	"helmsim/internal/infer"
	"helmsim/internal/serve"
	"helmsim/internal/server"
)

// waveGate holds every replica's worker mid-read while one wave's
// admission decisions land, so backlog — and therefore shedding — is
// deterministic no matter how fast the host decodes.
type waveGate struct {
	mu   sync.Mutex
	hold chan struct{} // non-nil: reads block until closed
}

func (g *waveGate) close() {
	g.mu.Lock()
	if g.hold == nil {
		g.hold = make(chan struct{})
	}
	g.mu.Unlock()
}

func (g *waveGate) open() {
	g.mu.Lock()
	if g.hold != nil {
		close(g.hold)
		g.hold = nil
	}
	g.mu.Unlock()
}

func (g *waveGate) wait() {
	g.mu.Lock()
	ch := g.hold
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// gateStore is a WeightStore whose reads park on the shared gate.
type gateStore struct {
	backing infer.WeightStore
	gate    *waveGate
}

func (s gateStore) Tensor(layer int, name string) ([]float32, error) {
	s.gate.wait()
	return s.backing.Tensor(layer, name)
}

// startCostReplica boots a fault-free daemon with token-budget admission
// configured, wired for in-process fronting. Every replica shares the
// same predictor seed, so cost estimates are comparable fleet-wide.
func startCostReplica(t *testing.T, name string, path string, cost server.CostConfig, gate *waveGate) *replica {
	t.Helper()
	mc := tinyModel()
	openStore := func() (infer.WeightStore, io.Closer, error) {
		fs, err := infer.OpenFileStore(path)
		if err != nil {
			return nil, nil, err
		}
		if err := fs.Verify(); err != nil {
			fs.Close()
			return nil, nil, err
		}
		return gateStore{backing: fs, gate: gate}, fs, nil
	}
	s, err := server.New(context.Background(), server.Config{
		Model:     mc,
		OpenStore: openStore,
		Workers:   1, // a single slow lane per replica, so backlog is real
		MaxQueue:  64,
		Cost:      cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := fault.NewRoundTripper(HandlerTransport{Handler: s.Handler()}, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return &replica{name: name, srv: s, rt: rt}
}

// TestOverloadGracefulDegradation is the PR's acceptance test: a
// three-replica fleet offered a sustained mixed-class load whose batch
// and rag components each exceed roughly twice their fleet-wide cost
// budget. Under that overload, every interactive request succeeds with
// tokens byte-identical to a solo engine, shedding lands exclusively on
// the lower classes in the documented order, no admitted request fails,
// and the fleet ledger plus every replica ledger conserve per class —
// all under -race via the overload-smoke CI job.
func TestOverloadGracefulDegradation(t *testing.T) {
	mc := tinyModel()
	path, w := writeCheckpoint(t, mc, 77)

	// Fault-free reference outputs from a solo engine.
	ref, err := infer.New(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	const nPrompts = 4
	const genTokens = 6
	prompts := make([][]int, nPrompts)
	want := make([][]int, nPrompts)
	for i := range prompts {
		prompts[i] = []int{1 + i, 2, 3}
		ref.Reset()
		if want[i], err = ref.Generate(prompts[i], genTokens); err != nil {
			t.Fatal(err)
		}
	}

	// Every request estimates at 3 prompt + 6 decode = 9 tokens (the
	// class buckets all clamp to max_tokens). Per replica: batch may hold
	// 2 concurrent requests (20/9), rag 2 (25/9), while the total budget
	// leaves interactive 155 tokens of guaranteed headroom — more than
	// every interactive request in a wave landing on one replica (12x9),
	// so by construction interactive is never shed.
	cost := server.CostConfig{
		TokenBudget:     200,
		ClassBudgets:    map[string]int{"batch": 20, "rag": 25},
		BrownoutHigh:    0.8,
		BrownoutLow:     0.4,
		BrownoutSustain: 4,
		PredictorSeed:   1,
	}
	gate := &waveGate{}
	replicas := make([]*replica, 3)
	var cfgs []BackendConfig
	for i := range replicas {
		name := fmt.Sprintf("r%d", i)
		replicas[i] = startCostReplica(t, name, path, cost, gate)
		cfgs = append(cfgs, BackendConfig{
			Name:   name,
			URL:    "http://" + name,
			Client: &http.Client{Transport: replicas[i].rt},
		})
	}
	g, err := New(context.Background(), Config{
		Backends:     cfgs,
		Route:        RouteLeastLoad, // cost-aware: routes on advertised backlog
		MaxFailovers: 2,
		Sleep:        noSleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	g.ProbeOnce(context.Background())

	// The offered mix, per wave: 12 interactive, 16 rag, 16 batch fired
	// concurrently. rag and batch each offer 144 estimated tokens against
	// fleet-wide class budgets of 75 and 60 — roughly 2x and 2.4x
	// capacity — sustained over three waves.
	const (
		nInteractive = 12
		nRag         = 16
		nBatch       = 16
		waves        = 3
	)
	var interactiveFail, admittedFail atomic.Int64
	var shedByClass [serve.NumClasses]atomic.Int64
	fire := func(wg *sync.WaitGroup, class serve.Class, i int, waveShed *atomic.Int64) {
		defer wg.Done()
		p := i % nPrompts
		body, err := json.Marshal(server.GenerateRequest{
			Prompt: prompts[p], MaxTokens: genTokens, Class: class.String(),
		})
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("%s request %d transport error: %v", class, i, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			shedByClass[class].Add(1)
			waveShed.Add(1)
			if class == serve.ClassInteractive {
				interactiveFail.Add(1)
				t.Errorf("interactive request %d shed with %d", i, resp.StatusCode)
			}
			// A shed must be honest: 429 or 503 with Retry-After, never a
			// silent failure of admitted work.
			if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
				admittedFail.Add(1)
				t.Errorf("%s request %d failed with %d (not a shed)", class, i, resp.StatusCode)
			} else if resp.Header.Get("Retry-After") == "" {
				t.Errorf("%s request %d shed %d without Retry-After", class, i, resp.StatusCode)
			}
			return
		}
		var gr server.GenerateResponse
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			admittedFail.Add(1)
			t.Errorf("%s request %d undecodable: %v", class, i, err)
			return
		}
		if len(gr.Tokens) != len(want[p]) {
			admittedFail.Add(1)
			t.Errorf("%s request %d token count %d, want %d", class, i, len(gr.Tokens), len(want[p]))
			return
		}
		for j := range want[p] {
			if gr.Tokens[j] != want[p][j] {
				admittedFail.Add(1)
				t.Errorf("%s request %d tokens diverged: %v vs %v", class, i, gr.Tokens, want[p])
				return
			}
		}
	}
	// fleetBacklog observes the replicas directly; the wave loop uses it
	// to sequence the gate, never to assert. Admitted cost is booked at
	// enqueue and released only at settlement, so with the gate closed
	// backlog/estCost counts exactly the requests admitted this wave.
	const estCost = 9 // every request: 3 prompt + 6 estimated decode
	fleetBacklog := func() int64 {
		var n int64
		for _, r := range replicas {
			n += r.srv.Stats().CostBacklog
		}
		return n
	}
	await := func(what string, done func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !done() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	const perWave = nInteractive + nRag + nBatch
	for wave := 0; wave < waves; wave++ {
		// Workers park on the gate, so every admission decision in this
		// wave is made against the full concurrent backlog — the overload
		// is real even on a host that decodes the tiny model in
		// microseconds.
		gate.close()
		var waveShed atomic.Int64
		var wg sync.WaitGroup
		wg.Add(perWave)
		for i := 0; i < nInteractive; i++ {
			go fire(&wg, serve.ClassInteractive, i, &waveShed)
		}
		for i := 0; i < nRag; i++ {
			go fire(&wg, serve.ClassRAG, i, &waveShed)
		}
		for i := 0; i < nBatch; i++ {
			go fire(&wg, serve.ClassBatch, i, &waveShed)
		}
		// Every request is decided — shed with a response, or admitted and
		// booked on exactly one replica — before any work drains.
		await("wave admission decisions", func() bool {
			return fleetBacklog()/estCost+waveShed.Load() >= perWave
		})
		gate.open()
		wg.Wait()
		// Quiesce the fleet so each wave faces the same starting state.
		await("cost backlog drain", func() bool { return fleetBacklog() == 0 })
	}

	// --- Quiescence: the acceptance properties ------------------------
	if n := interactiveFail.Load(); n != 0 {
		t.Fatalf("%d interactive requests shed under overload", n)
	}
	if n := admittedFail.Load(); n != 0 {
		t.Fatalf("%d admitted requests failed", n)
	}
	if shedByClass[serve.ClassBatch].Load()+shedByClass[serve.ClassRAG].Load() == 0 {
		t.Fatal("no lower-class sheds: the offered load did not exceed capacity")
	}

	st := g.Stats()
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
	if row := st.Classes[serve.ClassInteractive]; row.Arrivals != row.Admitted {
		t.Errorf("fleet interactive row shed: %+v", row)
	}
	for _, r := range replicas {
		rs := r.srv.Stats()
		if !rs.Conserved() {
			t.Errorf("replica %s ledger not conserved: %+v", r.name, rs)
		}
		ir := rs.Classes[serve.ClassInteractive]
		if ir.Arrivals != ir.Admitted {
			t.Errorf("replica %s shed interactive traffic: %+v", r.name, ir)
		}
		// Documented brownout order: rag browns out only after batch
		// (level 2 is reachable only through level 1).
		if rs.Classes[serve.ClassRAG].ShedBrownout > 0 && rs.Classes[serve.ClassBatch].ShedBrownout == 0 {
			t.Errorf("replica %s browned out rag before batch: %+v", r.name, rs.Classes)
		}
	}

	// The per-class ledger artifact the overload-smoke CI job archives.
	artifact := map[string]any{"fleet": st.Classes}
	for _, r := range replicas {
		artifact[r.name] = r.srv.Stats().Classes
	}
	js, _ := json.MarshalIndent(artifact, "", "  ")
	t.Logf("per-class ledger:\n%s", js)
}
