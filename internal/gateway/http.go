package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"helmsim/internal/serve"
)

// errorResponse mirrors the replica daemon's non-2xx body shape, so a
// client sees one error contract whether the gateway or a replica shed
// it.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the gateway's HTTP surface:
//
//	POST /v1/generate          — route a generation across the fleet
//	GET  /healthz              — gateway liveness
//	GET  /readyz               — gateway readiness (503 once draining)
//	GET  /fleetz               — fleet ledger + per-replica snapshot
//	POST /admin/drain?replica= — take a replica out of rotation
//	POST /admin/undrain?replica= — return it to rotation
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", g.handleGenerate)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /fleetz", g.handleFleetz)
	mux.HandleFunc("POST /admin/drain", g.handleAdminDrain(true))
	mux.HandleFunc("POST /admin/undrain", g.handleAdminDrain(false))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) // client hanging up mid-body is not actionable
}

// setRetryAfter writes a Retry-After header, rounding to whole seconds
// with a one-second floor.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	if d <= 0 {
		return
	}
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// handleGenerate is the gateway data path: validate just enough to
// reject garbage cheaply, then route with failover. The replica owns
// model-level validation (vocabulary bounds, token caps) — the gateway
// is deliberately model-agnostic so heterogeneous fleets need no
// config duplication.
func (g *Gateway) handleGenerate(w http.ResponseWriter, r *http.Request) {
	g.arrivals.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRelayBody))
	if err != nil {
		g.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "unreadable request: " + err.Error()})
		return
	}
	var probe struct {
		Prompt []int  `json:"prompt"`
		Class  string `json:"class"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		g.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	if len(probe.Prompt) == 0 {
		g.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty prompt"})
		return
	}
	class, err := serve.ParseClass(probe.Class)
	if err != nil {
		g.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	g.classes[class].arrivals.Add(1)

	// Admission: the in-flight count may only grow while serving, so
	// Drain's Wait cannot race a late arrival.
	g.mu.Lock()
	if g.state != stateServing {
		g.mu.Unlock()
		g.shedDraining.Add(1)
		g.classes[class].shedOther.Add(1)
		setRetryAfter(w, g.cfg.DrainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "gateway draining"})
		return
	}
	g.reqWG.Add(1)
	g.mu.Unlock()
	defer g.reqWG.Done()

	// Fleet-level brownout: when every eligible replica advertises it
	// would reject this class anyway, shed at the edge — honest 503 with
	// Retry-After, without burning a forward and a failover sweep on a
	// foregone conclusion. A single replica with headroom keeps the
	// class flowing (its own admission stays the authority).
	if level := g.fleetBrownoutLevel(); int(class) < level {
		g.shedBrownout.Add(1)
		g.classes[class].shedBrownout.Add(1)
		setRetryAfter(w, g.cfg.BrownoutRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: fmt.Sprintf("fleet brownout: %s class shed under sustained overload", class)})
		return
	}

	rl, b := g.route(r.Context(), body)
	if rl == nil {
		g.shedNoHealthy.Add(1)
		g.classes[class].shedOther.Add(1)
		setRetryAfter(w, g.cfg.DrainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no healthy replica"})
		return
	}
	g.routed.Add(1)
	g.classes[class].admitted.Add(1)
	b.finalized.Add(1)
	if rl.status == http.StatusOK {
		b.served.Add(1)
	}
	if rl.contentType != "" {
		w.Header().Set("Content-Type", rl.contentType)
	}
	if rl.retryAfter != "" {
		w.Header().Set("Retry-After", rl.retryAfter)
	}
	w.Header().Set("X-Helm-Replica", b.name)
	w.WriteHeader(rl.status)
	_, _ = w.Write(rl.body)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports whether the gateway can take traffic: serving,
// with at least one replica in rotation. A fleet with every replica
// down is not ready — an upstream balancer should route around this
// gateway too.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.Draining() {
		setRetryAfter(w, g.cfg.DrainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if len(g.candidates(nil)) == 0 {
		setRetryAfter(w, g.cfg.DrainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy replica"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (g *Gateway) handleFleetz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Stats())
}

// handleAdminDrain serves both rotation switches; out selects the
// direction.
func (g *Gateway) handleAdminDrain(out bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("replica")
		if name == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing replica parameter"})
			return
		}
		var changed bool
		var err error
		if out {
			changed, err = g.DrainOut(name)
		} else {
			changed, err = g.DrainIn(name)
		}
		if err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		verb := "drained out of"
		if !out {
			verb = "returned to"
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"changed": changed,
			"detail":  fmt.Sprintf("replica %q %s rotation", name, verb),
		})
	}
}
