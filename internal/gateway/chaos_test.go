package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"helmsim/internal/fault"
	"helmsim/internal/infer"
	"helmsim/internal/model"
	"helmsim/internal/server"
)

// tinyModel matches the server package's laptop-scale config so fleet
// and solo runs compare the same engine.
func tinyModel() model.Config {
	return model.Config{
		Name: "tiny-opt", Hidden: 32, Heads: 4, Blocks: 2,
		Vocab: 64, MaxSeq: 128, DTypeBytes: 2,
	}
}

// writeCheckpoint synthesizes weights and writes a checkpoint file —
// the shared artifact every replica serves.
func writeCheckpoint(t *testing.T, mc model.Config, seed int64) (string, *infer.MemStore) {
	t.Helper()
	w, err := infer.RandomWeights(mc, seed, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.hlmc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := infer.WriteCheckpoint(f, mc, w, nil); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, w
}

// replica is one fleet member under test: a real daemon over a faulty
// store, fronted in-process with a fault RoundTripper as its network.
type replica struct {
	name string
	srv  *server.Server
	rt   *fault.RoundTripper
}

// startReplica boots a server.Server whose store injects seeded 5%
// transient faults on every open (reloads included), wired for
// in-process fronting.
func startReplica(t *testing.T, name string, mc model.Config, path string, seed int64) *replica {
	t.Helper()
	var faultSeed atomic.Int64
	faultSeed.Store(seed)
	openStore := func() (infer.WeightStore, io.Closer, error) {
		fs, err := infer.OpenFileStore(path)
		if err != nil {
			return nil, nil, err
		}
		if err := fs.Verify(); err != nil {
			fs.Close()
			return nil, nil, err
		}
		flaky, err := fault.NewStore(fs, fault.Plan{Seed: faultSeed.Add(1), TransientRate: 0.05})
		if err != nil {
			fs.Close()
			return nil, nil, err
		}
		return flaky, fs, nil
	}
	s, err := server.New(context.Background(), server.Config{
		Model:     mc,
		OpenStore: openStore,
		Workers:   2,
		MaxQueue:  64,
		Retry:     infer.Retry{Max: 8, Sleep: noSleep},
		Breaker: server.BreakerConfig{
			Window: 16, MinSamples: 4, TripRate: 0.5,
			Cooldown: 20 * time.Millisecond, Probes: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := fault.NewRoundTripper(HandlerTransport{Handler: s.Handler()}, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return &replica{name: name, srv: s, rt: rt}
}

// TestFleetChaosLifecycle is the PR's acceptance test: a three-replica
// fleet under 5% injected storage faults driven through a replica kill,
// a hot checkpoint reload, and an administrative drain-out/drain-in —
// all mid-traffic, under -race — with zero failed client requests,
// every token byte-identical to a fault-free solo engine, and the fleet
// ledger conserved on top of each surviving replica's own ledger.
func TestFleetChaosLifecycle(t *testing.T) {
	mc := tinyModel()
	path, w := writeCheckpoint(t, mc, 42)

	// Fault-free reference outputs from a solo engine.
	ref, err := infer.New(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	const nPrompts = 4
	const genTokens = 6
	want := make([][]int, nPrompts)
	prompts := make([][]int, nPrompts)
	for i := range prompts {
		prompts[i] = []int{1 + i, 2, 3}
		ref.Reset()
		if want[i], err = ref.Generate(prompts[i], genTokens); err != nil {
			t.Fatal(err)
		}
	}

	replicas := make([]*replica, 3)
	var cfgs []BackendConfig
	for i := range replicas {
		name := fmt.Sprintf("r%d", i)
		replicas[i] = startReplica(t, name, mc, path, int64(100*i))
		cfgs = append(cfgs, BackendConfig{
			Name:   name,
			URL:    "http://" + name,
			Client: &http.Client{Transport: replicas[i].rt},
			Breaker: server.BreakerConfig{
				Window: 16, MinSamples: 4, TripRate: 0.5,
				Cooldown: 20 * time.Millisecond, Probes: 1,
			},
		})
	}

	g, err := New(context.Background(), Config{
		Backends:     cfgs,
		Route:        RouteRoundRobin,
		MaxFailovers: 2,
		Sleep:        noSleep,
		Probe: ProbeConfig{
			Timeout: time.Second, FailThreshold: 2, PassThreshold: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Probe rounds run manually so each phase transition is
	// deterministic: the kill is observed only when the test says so,
	// guaranteeing the burst in between exercises failover.
	probe := func(rounds int) {
		for i := 0; i < rounds; i++ {
			g.ProbeOnce(context.Background())
		}
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var failures atomic.Int64
	fire := func(i int) {
		defer wg.Done()
		p := i % nPrompts
		body, err := json.Marshal(server.GenerateRequest{Prompt: prompts[p], MaxTokens: genTokens})
		if err != nil {
			t.Error(err)
			return
		}
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			failures.Add(1)
			t.Errorf("request %d transport error: %v", i, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			failures.Add(1)
			t.Errorf("request %d failed: %d (%s) via %q", i, resp.StatusCode, msg, resp.Header.Get("X-Helm-Replica"))
			return
		}
		var gr server.GenerateResponse
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			failures.Add(1)
			t.Errorf("request %d undecodable: %v", i, err)
			return
		}
		for j := range want[p] {
			if gr.Tokens[j] != want[p][j] {
				failures.Add(1)
				t.Errorf("request %d tokens diverged: %v vs %v", i, gr.Tokens, want[p])
				return
			}
		}
	}
	burst := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go fire(i)
		}
		wg.Wait()
	}
	attemptsOf := func(name string) int64 {
		for _, bs := range g.Stats().Backends {
			if bs.Name == name {
				return bs.Attempts
			}
		}
		t.Fatalf("no stats for replica %q", name)
		return 0
	}

	// --- Phase 1: faults absorbed, traffic spread across the fleet ----
	probe(1)
	burst(16)
	for i := range replicas {
		if attemptsOf(replicas[i].name) == 0 {
			t.Errorf("replica %s took no traffic in the healthy phase", replicas[i].name)
		}
	}

	// --- Phase 2: kill r0 mid-traffic -------------------------------
	// The blackout hits while r0 is still in rotation — no probe round
	// runs until after the burst — so requests routed there must fail
	// over invisibly; the prober then evicts it.
	replicas[0].rt.SetDown(true)
	burst(16)
	probe(2) // FailThreshold consecutive failures
	if g.Backend("r0").eligible() {
		t.Fatal("prober did not evict the killed replica after FailThreshold rounds")
	}
	killedAt := attemptsOf("r0")
	burst(8)
	if got := attemptsOf("r0"); got != killedAt {
		t.Errorf("evicted replica r0 still took forwards: attempts %d -> %d", killedAt, got)
	}

	// --- Phase 3: hot reload r1 mid-traffic -------------------------
	reloadDone := make(chan error, 1)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go fire(i)
		if i == 4 {
			go func() { reloadDone <- replicas[1].srv.Reload() }()
		}
	}
	wg.Wait()
	if err := <-reloadDone; err != nil {
		t.Fatalf("hot reload under fleet traffic: %v", err)
	}

	// --- Phase 4: drain r2 out and back in --------------------------
	resp, err := http.Post(ts.URL+"/admin/drain?replica=r2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin drain-out returned %d", resp.StatusCode)
	}
	drainedAt := attemptsOf("r2")
	burst(12)
	if got := attemptsOf("r2"); got != drainedAt {
		t.Errorf("drained replica r2 took traffic: attempts %d -> %d", drainedAt, got)
	}
	resp, err = http.Post(ts.URL+"/admin/undrain?replica=r2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin drain-in returned %d", resp.StatusCode)
	}
	burst(12)
	if got := attemptsOf("r2"); got == drainedAt {
		t.Error("replica r2 took no traffic after drain-in")
	}

	// --- Quiescence: both ledger layers conserve --------------------
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures across the chaos run", n)
	}
	st := g.Stats()
	if st.RetriedFailover == 0 {
		t.Error("the replica kill produced no failover retries")
	}
	if st.ShedNoHealthyBackend != 0 {
		t.Errorf("%d requests shed with replicas still healthy", st.ShedNoHealthyBackend)
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
	for _, r := range replicas {
		rs := r.srv.Stats()
		if !rs.Conserved() {
			t.Errorf("replica %s ledger not conserved: %+v", r.name, rs)
		}
		t.Logf("replica %s: arrivals %d served %d transients absorbed %d reloads %d",
			r.name, rs.Arrivals, rs.Served, rs.StoreTransients, rs.Reloads)
	}
	t.Logf("fleet: arrivals %d routed %d failover retries %d shed(no-healthy %d draining %d bad %d)",
		st.Arrivals, st.Routed, st.RetriedFailover, st.ShedNoHealthyBackend, st.ShedDraining, st.BadRequests)
	for _, bs := range st.Backends {
		t.Logf("  %s: attempts %d finalized %d served %d failovers %d probes %d (failed %d)",
			bs.Name, bs.Attempts, bs.Finalized, bs.Served, bs.Failovers, bs.Probes, bs.ProbeFailures)
	}
}
