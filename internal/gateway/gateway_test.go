package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"helmsim/internal/fault"
	"helmsim/internal/server"
)

// stubReplica is a scripted replica speaking the daemon's HTTP surface:
// unit tests steer its verdicts directly instead of booting a real
// server.Server (the chaos acceptance test does that).
type stubReplica struct {
	mu          sync.Mutex
	genStatus   int
	genBody     string
	readyStatus int
	retryAfter  string
	statz       server.Stats
}

func newStubReplica() *stubReplica {
	return &stubReplica{
		genStatus: http.StatusOK, genBody: `{"tokens":[7]}`, readyStatus: http.StatusOK,
		statz: server.Stats{SchemaVersion: server.StatzSchemaVersion},
	}
}

// setStatz scripts the /statz document the stub serves.
func (r *stubReplica) setStatz(st server.Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.statz = st
}

func (r *stubReplica) set(genStatus int, genBody string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.genStatus, r.genBody = genStatus, genBody
}

func (r *stubReplica) setReady(status int, retryAfter string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.readyStatus, r.retryAfter = status, retryAfter
}

func (r *stubReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		status, body := r.genStatus, r.genBody
		r.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if status == http.StatusTooManyRequests || status >= 500 {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		status, ra := r.readyStatus, r.retryAfter
		r.mu.Unlock()
		if ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(status)
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		st := r.statz
		r.mu.Unlock()
		_ = json.NewEncoder(w).Encode(st)
	})
	return mux
}

// stubBackend wires a stub replica into a BackendConfig over an
// in-process transport, with a fault RoundTripper for kill switches.
func stubBackend(t *testing.T, name string, r *stubReplica, weight int) (BackendConfig, *fault.RoundTripper) {
	t.Helper()
	rt, err := fault.NewRoundTripper(HandlerTransport{Handler: r.handler()}, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	return BackendConfig{
		Name:   name,
		URL:    "http://" + name,
		Client: &http.Client{Transport: rt},
		Weight: weight,
	}, rt
}

func noSleep(time.Duration) {}

// startGateway builds a gateway over the configs plus an httptest front
// end, with teardown registered.
func startGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg.Sleep = noSleep
	g, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		g.Drain(ctx)
	})
	return g, ts
}

func postGenerate(t *testing.T, url string, prompt []int) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestConfigValidation(t *testing.T) {
	good, _ := stubBackend(t, "a", newStubReplica(), 1)
	bad := []Config{
		{},
		{Backends: []BackendConfig{{Name: "", URL: "http://x"}}},
		{Backends: []BackendConfig{{Name: "a", URL: ""}}},
		{Backends: []BackendConfig{good, good}},                         // duplicate name
		{Backends: []BackendConfig{good}, Route: "secret-sauce"},        // unknown router
		{Backends: []BackendConfig{good}, ForwardTimeout: -time.Second}, // negative timeout
		{Backends: []BackendConfig{good}, Probe: ProbeConfig{FailThreshold: -1}},
		{Backends: []BackendConfig{{Name: "w", URL: "http://w", Weight: -2}}}, // negative weight
	}
	for i, cfg := range bad {
		if _, err := New(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(context.Background(), Config{Backends: []BackendConfig{good}}); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestRoundRobinSpreadsTraffic(t *testing.T) {
	var cfgs []BackendConfig
	for i := 0; i < 3; i++ {
		bc, _ := stubBackend(t, fmt.Sprintf("r%d", i), newStubReplica(), 1)
		cfgs = append(cfgs, bc)
	}
	g, ts := startGateway(t, Config{Backends: cfgs})
	for i := 0; i < 6; i++ {
		resp, body := postGenerate(t, ts.URL, []int{1, 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	st := g.Stats()
	for _, b := range st.Backends {
		if b.Attempts != 2 || b.Finalized != 2 || b.Served != 2 {
			t.Errorf("replica %s: attempts=%d finalized=%d served=%d, want 2/2/2", b.Name, b.Attempts, b.Finalized, b.Served)
		}
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
}

func TestWeightedRoutingFollowsTierWeights(t *testing.T) {
	a, _ := stubBackend(t, "dram", newStubReplica(), 3)
	b, _ := stubBackend(t, "ssd", newStubReplica(), 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}, Route: RouteWeighted})
	for i := 0; i < 8; i++ {
		resp, body := postGenerate(t, ts.URL, []int{1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	st := g.Stats()
	got := map[string]int64{}
	for _, bs := range st.Backends {
		got[bs.Name] = bs.Attempts
	}
	if got["dram"] != 6 || got["ssd"] != 2 {
		t.Errorf("weighted 3:1 split over 8 requests = dram %d, ssd %d; want 6, 2", got["dram"], got["ssd"])
	}
}

func TestLeastLoadPrefersShortQueue(t *testing.T) {
	a, _ := stubBackend(t, "busy", newStubReplica(), 1)
	b, _ := stubBackend(t, "idle", newStubReplica(), 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}, Route: RouteLeastLoad})
	// Inject a probed queue depth: the busy replica reports a backlog.
	bb := g.Backend("busy")
	bb.mu.Lock()
	bb.lastStats = server.Stats{SchemaVersion: server.StatzSchemaVersion, QueueDepth: 9}
	bb.haveStats = true
	bb.mu.Unlock()
	for i := 0; i < 4; i++ {
		resp, body := postGenerate(t, ts.URL, []int{1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	st := g.Stats()
	for _, bs := range st.Backends {
		switch bs.Name {
		case "busy":
			if bs.Attempts != 0 {
				t.Errorf("busy replica took %d requests despite queue depth 9", bs.Attempts)
			}
		case "idle":
			if bs.Attempts != 4 {
				t.Errorf("idle replica took %d of 4 requests", bs.Attempts)
			}
		}
	}
}

func TestFailoverSkipsFailedReplicaAndSucceeds(t *testing.T) {
	sick := newStubReplica()
	sick.set(http.StatusInternalServerError, `{"error":"panic"}`)
	a, _ := stubBackend(t, "sick", sick, 1)
	b, _ := stubBackend(t, "well", newStubReplica(), 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}})
	// Round-robin starts on the sick replica; every request must still
	// succeed via failover to the well one.
	for i := 0; i < 4; i++ {
		resp, body := postGenerate(t, ts.URL, []int{1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d (%s)", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Helm-Replica"); got != "well" {
			t.Errorf("request %d finalized by %q, want well", i, got)
		}
	}
	st := g.Stats()
	if st.RetriedFailover == 0 {
		t.Error("no failover retries recorded")
	}
	for _, bs := range st.Backends {
		if bs.Name == "sick" && bs.Finalized != 0 {
			t.Errorf("sick replica finalized %d responses", bs.Finalized)
		}
		if bs.Name == "well" && bs.Finalized != 4 {
			t.Errorf("well replica finalized %d of 4", bs.Finalized)
		}
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
}

func TestTransportDeathFailsOver(t *testing.T) {
	a, rtA := stubBackend(t, "dead", newStubReplica(), 1)
	b, _ := stubBackend(t, "alive", newStubReplica(), 1)
	rtA.SetDown(true)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}})
	for i := 0; i < 3; i++ {
		resp, body := postGenerate(t, ts.URL, []int{1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d during replica blackout: %d (%s)", i, resp.StatusCode, body)
		}
	}
	st := g.Stats()
	if st.RetriedFailover == 0 {
		t.Error("no failover retries recorded for a dead replica")
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
}

func TestNoHealthyBackendSheds(t *testing.T) {
	a, rtA := stubBackend(t, "a", newStubReplica(), 1)
	b, rtB := stubBackend(t, "b", newStubReplica(), 1)
	rtA.SetDown(true)
	rtB.SetDown(true)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}})
	resp, body := postGenerate(t, ts.URL, []int{1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("total fleet blackout returned %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no-healthy-backend shed carries no Retry-After")
	}
	st := g.Stats()
	if st.ShedNoHealthyBackend != 1 {
		t.Errorf("shed_no_healthy_backend = %d, want 1", st.ShedNoHealthyBackend)
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
}

func TestSaturatedFleetRelaysReplicaShed(t *testing.T) {
	full1 := newStubReplica()
	full1.set(http.StatusTooManyRequests, `{"error":"queue full"}`)
	full2 := newStubReplica()
	full2.set(http.StatusTooManyRequests, `{"error":"queue full"}`)
	a, _ := stubBackend(t, "a", full1, 1)
	b, _ := stubBackend(t, "b", full2, 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}})
	resp, body := postGenerate(t, ts.URL, []int{1})
	// The replica's own 429 is relayed — not converted into a gateway
	// shed — because it carries the authoritative Retry-After.
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet returned %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("relayed shed lost its Retry-After")
	}
	st := g.Stats()
	if st.Routed != 1 || st.ShedNoHealthyBackend != 0 {
		t.Errorf("routed=%d shed=%d; the relayed shed must count as routed", st.Routed, st.ShedNoHealthyBackend)
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
}

func TestAdminDrainOutAndIn(t *testing.T) {
	a, _ := stubBackend(t, "a", newStubReplica(), 1)
	b, _ := stubBackend(t, "b", newStubReplica(), 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a, b}})

	resp, err := http.Post(ts.URL+"/admin/drain?replica=ghost", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("draining unknown replica returned %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/admin/drain?replica=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain-out returned %d", resp.StatusCode)
	}
	for i := 0; i < 4; i++ {
		r, body := postGenerate(t, ts.URL, []int{1})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("request %d with one replica drained: %d (%s)", i, r.StatusCode, body)
		}
		if got := r.Header.Get("X-Helm-Replica"); got != "b" {
			t.Errorf("request %d routed to drained replica %q", i, got)
		}
	}

	resp, err = http.Post(ts.URL+"/admin/undrain?replica=a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain-in returned %d", resp.StatusCode)
	}
	before := g.Stats()
	for i := 0; i < 4; i++ {
		r, body := postGenerate(t, ts.URL, []int{1})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("request %d after drain-in: %d (%s)", i, r.StatusCode, body)
		}
	}
	after := g.Stats()
	var beforeA, afterA int64
	for i, bs := range before.Backends {
		if bs.Name == "a" {
			beforeA, afterA = bs.Attempts, after.Backends[i].Attempts
		}
	}
	if afterA <= beforeA {
		t.Errorf("replica a took no traffic after drain-in: %d -> %d", beforeA, afterA)
	}
}

func TestProberThresholdsAndDrainDetection(t *testing.T) {
	r := newStubReplica()
	bc, rt := stubBackend(t, "a", r, 1)
	clock := time.Unix(1000, 0)
	g, err := New(context.Background(), Config{
		Backends: []BackendConfig{bc},
		Probe:    ProbeConfig{FailThreshold: 2, PassThreshold: 1},
		Now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	probe := func() {
		clock = clock.Add(time.Second)
		g.ProbeOnce(ctx)
	}
	b := g.Backend("a")

	probe()
	if !b.eligible() {
		t.Fatal("healthy replica not eligible after a passing probe")
	}

	// One failed probe must not evict; the second (threshold) must.
	rt.SetDown(true)
	probe()
	if !b.eligible() {
		t.Error("single probe failure below threshold evicted the replica")
	}
	probe()
	if b.eligible() {
		t.Error("replica still eligible after FailThreshold consecutive failures")
	}

	// Recovery: one pass (PassThreshold 1) restores rotation.
	rt.SetDown(false)
	probe()
	if !b.eligible() {
		t.Error("replica not restored after a passing probe")
	}

	// A draining replica is out of rotation but not unhealthy, and its
	// Retry-After back-off defers the next probe.
	r.setReady(http.StatusServiceUnavailable, "30")
	probe()
	if b.eligible() {
		t.Error("draining replica still in rotation")
	}
	st := g.Stats()
	var probes int64
	for _, bs := range st.Backends {
		if bs.Name == "a" {
			probes = bs.Probes
			if !bs.Draining {
				t.Error("fleetz does not report the replica draining")
			}
			if !bs.Ready {
				t.Error("draining was miscounted as unhealthy")
			}
		}
	}
	// Within the 30s Retry-After window the prober must hold off.
	probe()
	if got := g.Stats().Backends[0].Probes; got != probes {
		t.Errorf("prober ignored Retry-After: %d probes, want %d", got, probes)
	}
	// Past the window (and with the replica ready again) it resumes.
	clock = clock.Add(31 * time.Second)
	r.setReady(http.StatusOK, "")
	probe()
	if !b.eligible() {
		t.Error("replica not back in rotation after its drain ended")
	}
}

func TestGatewayDrain(t *testing.T) {
	a, _ := stubBackend(t, "a", newStubReplica(), 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a}})
	if resp, body := postGenerate(t, ts.URL, []int{1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain request: %d (%s)", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatalf("clean drain errored: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("drained readyz: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	r2, body := postGenerate(t, ts.URL, []int{1})
	if r2.StatusCode != http.StatusServiceUnavailable || r2.Header.Get("Retry-After") == "" {
		t.Errorf("post-drain generate: status %d, Retry-After %q (%s)", r2.StatusCode, r2.Header.Get("Retry-After"), body)
	}
	st := g.Stats()
	if st.State != "stopped" || st.ShedDraining != 1 {
		t.Errorf("post-drain stats: %+v", st)
	}
	if !st.Conserved() {
		t.Errorf("fleet ledger not conserved: %+v", st)
	}
}

func TestBadRequestsConserve(t *testing.T) {
	a, _ := stubBackend(t, "a", newStubReplica(), 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{a}})
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body returned %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(`{"prompt":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty prompt returned %d", resp.StatusCode)
	}
	st := g.Stats()
	if st.BadRequests != 2 || !st.Conserved() {
		t.Errorf("bad-request ledger: %+v", st)
	}
}

func TestHandlerTransportRoundTrip(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Probe", "yes")
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	})
	c := &http.Client{Transport: HandlerTransport{Handler: h}}
	resp, err := c.Get("http://anywhere/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTeapot || resp.Header.Get("X-Probe") != "yes" || buf.String() != "short and stout" {
		t.Errorf("round trip mangled: %d %q %q", resp.StatusCode, resp.Header.Get("X-Probe"), buf.String())
	}
}
