package gateway

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"helmsim/internal/fault"
	"helmsim/internal/server"
)

// BackendConfig describes one replica the gateway fronts.
type BackendConfig struct {
	// Name identifies the replica in the fleet ledger and the admin API
	// (required, unique within a gateway).
	Name string
	// URL is the replica's base URL, e.g. "http://127.0.0.1:8080". The
	// gateway appends /v1/generate, /readyz, and /statz to it.
	URL string
	// Client issues the replica's HTTP traffic — forwards and probes. A
	// nil Client gets a fresh one over http.DefaultTransport. In-process
	// replicas supply a Client over a HandlerTransport; chaos tests wrap
	// the transport with fault.NewRoundTripper.
	Client *http.Client
	// Weight is the replica's share under the weighted router — the
	// heterogeneous-tier knob: a replica whose weights live on a faster
	// memdev tier takes proportionally more traffic (default 1).
	Weight int
	// Breaker tunes this replica's circuit breaker (zero values take the
	// server package's defaults). The gateway reuses the daemon's own
	// windowed breaker, fed with transport-level outcomes: a replica the
	// gateway cannot reach trips it; a replica that answers — even with
	// a shed — keeps it closed, because its own admission is the
	// authority on load.
	Breaker server.BreakerConfig
}

func (c BackendConfig) withDefaults() BackendConfig {
	if c.Weight == 0 {
		c.Weight = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Validate rejects unusable backend configurations (after defaulting).
func (c BackendConfig) Validate() error {
	c = c.withDefaults()
	if c.Name == "" {
		return fmt.Errorf("gateway: backend with empty name")
	}
	if c.URL == "" {
		return fmt.Errorf("gateway: backend %q with empty URL", c.Name)
	}
	if c.Weight < 1 {
		return fmt.Errorf("gateway: backend %q weight %d < 1", c.Name, c.Weight)
	}
	return c.Breaker.Validate()
}

// Backend is the gateway's live view of one replica: rotation state
// maintained by the prober and the admin API, a per-replica circuit
// breaker, and the attribution counters of the fleet ledger.
type Backend struct {
	name    string
	baseURL string
	client  *http.Client
	weight  int
	breaker *server.Breaker

	// mu guards the probe-maintained state below.
	mu sync.Mutex
	// ready is the prober's verdict: flips false after FailThreshold
	// consecutive probe failures, back after PassThreshold passes.
	ready bool
	// draining means the replica itself reported draining via /readyz —
	// its own graceful drain has begun, so the gateway pulls it from
	// rotation without counting the (healthy, deliberate) refusal as a
	// probe failure.
	draining bool
	// adminOut means an operator drained this replica out of rotation
	// through the gateway's admin API.
	adminOut     bool
	consecFails  int
	consecPasses int
	// nextProbeAt honors a Retry-After from the replica: the prober
	// backs off on the same contract clients do.
	nextProbeAt time.Time
	lastStats   server.Stats
	haveStats   bool

	inflight atomic.Int64

	probes        atomic.Int64
	probeFailures atomic.Int64

	// Fleet-ledger attribution. attempts counts forwards routed here;
	// finalized counts responses relayed to a client from here (the
	// conserved bucket: sum over backends + gateway sheds == arrivals);
	// served counts the 200s among them; failovers counts attempts that
	// failed or shed here and were retried on another replica.
	attempts  atomic.Int64
	finalized atomic.Int64
	served    atomic.Int64
	failovers atomic.Int64
}

func newBackend(c BackendConfig) (*Backend, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	br, err := server.NewBreaker(c.Breaker)
	if err != nil {
		return nil, err
	}
	return &Backend{
		name:    c.Name,
		baseURL: c.URL,
		client:  c.Client,
		weight:  c.Weight,
		breaker: br,
		// Optimistic start: a backend is in rotation until the prober
		// says otherwise, so a gateway serves before its first probe
		// round and a cold-started dead replica is handled by failover
		// until the prober catches up.
		ready: true,
	}, nil
}

// Name reports the replica's fleet-ledger identity.
func (b *Backend) Name() string { return b.name }

// eligible reports whether the replica is in rotation: probed ready,
// not draining itself, and not drained out by an operator. The breaker
// is checked separately at attempt time because its half-open state
// hands out probe slots that must be settled.
func (b *Backend) eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ready && !b.draining && !b.adminOut
}

// setAdminOut flips the operator rotation switch, reporting the
// previous state.
func (b *Backend) setAdminOut(out bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	prev := b.adminOut
	b.adminOut = out
	return prev
}

// MarkDraining is the in-process drain hook target: a replica whose
// server.Config.OnStateChange fires "draining" calls this to pull
// itself from rotation immediately, without waiting for the next probe
// round. The prober keeps the flag honest afterwards — a replica whose
// /readyz goes back to 200 returns to rotation.
func (b *Backend) MarkDraining() {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
}

// queueDepth is the replica-side load signal for the least-load router:
// the last probed queue depth, or 0 before the first statz probe.
func (b *Backend) queueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveStats {
		return 0
	}
	return b.lastStats.QueueDepth
}

// costBacklog is the replica's advertised admitted-cost backlog in
// estimated tokens — the fine-grained headroom signal the least-load
// router folds in. 0 before the first probe and from v2 replicas (the
// field decodes zero), so mixed-version fleets degrade to count-based
// routing rather than misrouting.
func (b *Backend) costBacklog() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveStats {
		return 0
	}
	return b.lastStats.CostBacklog
}

// brownoutLevel is the replica's advertised brownout level (classes
// below it are rejected at its admission). 0 before the first probe and
// from v2 replicas.
func (b *Backend) brownoutLevel() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.haveStats {
		return 0
	}
	return b.lastStats.BrownoutLevel
}

// relayed is one replica response the gateway can hand to a client:
// status, body, and the headers the shed contract carries.
type relayed struct {
	status      int
	body        []byte
	contentType string
	retryAfter  string
}

// transportError marks a forward that never produced an HTTP response —
// the replica is unreachable (killed, blacked out, mid-crash). It is
// transient from the fleet's perspective: another replica can serve the
// request, and this one may come back.
type transportError struct{ err error }

func (e transportError) Error() string   { return fmt.Sprintf("gateway: transport: %v", e.err) }
func (e transportError) Unwrap() error   { return e.err }
func (e transportError) Transient() bool { return true }

// forward sends one generate request to the replica and reads the full
// response. Any well-formed HTTP response — success or shed — returns a
// relayed; only transport-level failures return an error (always
// classifiable via fault.IsTransient through the transportError wrap).
func (b *Backend) forward(ctx context.Context, body []byte) (*relayed, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.baseURL+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("gateway: building forward to %s: %w", b.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := b.client.Do(req)
	if err != nil {
		if fault.IsTransient(err) {
			return nil, err
		}
		return nil, transportError{err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBody))
	if err != nil {
		// The response started and died mid-body: same verdict as a
		// connection that never answered.
		if fault.IsTransient(err) {
			return nil, err
		}
		return nil, transportError{err}
	}
	return &relayed{
		status:      resp.StatusCode,
		body:        payload,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
	}, nil
}

// maxRelayBody bounds a relayed replica response, mirroring the
// daemon's own request bound.
const maxRelayBody = 1 << 20
