package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"helmsim/internal/serve"
	"helmsim/internal/server"
)

// TestStatzVersionGate pins the prober's schema window: the current
// version and the previous one both decode (a v2 replica simply carries
// no cost signal), anything outside the window is discarded unread.
func TestStatzVersionGate(t *testing.T) {
	cases := []struct {
		version int
		want    bool
	}{
		{server.StatzSchemaVersionMin, true},      // v2: previous schema still spoken
		{server.StatzSchemaVersion, true},         // v3: current
		{server.StatzSchemaVersionMin - 1, false}, // v1: below the window
		{server.StatzSchemaVersion + 1, false},    // v4: from the future
	}
	for _, tc := range cases {
		r := newStubReplica()
		r.setStatz(server.Stats{SchemaVersion: tc.version, QueueDepth: 7})
		bc, _ := stubBackend(t, "r", r, 1)
		g, _ := startGateway(t, Config{Backends: []BackendConfig{bc}})
		g.ProbeOnce(context.Background())
		b := g.Backend("r")
		b.mu.Lock()
		have := b.haveStats
		b.mu.Unlock()
		if have != tc.want {
			t.Errorf("statz version %d: snapshot accepted=%v, want %v", tc.version, have, tc.want)
		}
		if tc.want && b.queueDepth() != 7 {
			t.Errorf("statz version %d: queue depth %d, want 7", tc.version, b.queueDepth())
		}
	}
}

// TestLeastLoadCostAware pins the routing score: with equal request
// counts the advertised cost backlog breaks the tie, and a replica
// without a cost signal (v2, or pre-probe) scores on counts alone.
func TestLeastLoadCostAware(t *testing.T) {
	mk := func(name string, depth int, backlog int64, have bool) *Backend {
		b := &Backend{name: name}
		b.haveStats = have
		b.lastStats = server.Stats{QueueDepth: depth, CostBacklog: backlog}
		return b
	}
	heavy := mk("heavy", 1, 900, true)
	light := mk("light", 1, 10, true)
	v2 := mk("v2", 1, 0, true)
	if got := (leastLoad{}).Pick([]*Backend{heavy, light}); got != light {
		t.Errorf("equal depth: picked %s, want the lower cost backlog", got.name)
	}
	// The count term dominates: one extra queued request outweighs any
	// realistic backlog gap.
	deep := mk("deep", 3, 0, true)
	if got := (leastLoad{}).Pick([]*Backend{deep, heavy}); got != heavy {
		t.Errorf("depth 3 vs 1: picked %s, want the shallower replica", got.name)
	}
	// A v2 replica (zero cost fields) is indistinguishable from an empty
	// one on cost — ties break toward configuration order.
	if got := (leastLoad{}).Pick([]*Backend{v2, mk("v2b", 1, 0, true)}); got != v2 {
		t.Errorf("v2 tie: picked %s, want configuration order", got.name)
	}
}

// TestFleetBrownoutShedsAtEdge pins the edge shed: when EVERY eligible
// replica advertises a brownout level above the class, the gateway
// sheds at admission with an honest Retry-After and its own conserved
// bucket; a single replica with headroom keeps the class flowing.
func TestFleetBrownoutShedsAtEdge(t *testing.T) {
	r1, r2 := newStubReplica(), newStubReplica()
	r1.setStatz(server.Stats{SchemaVersion: server.StatzSchemaVersion, BrownoutLevel: 1})
	r2.setStatz(server.Stats{SchemaVersion: server.StatzSchemaVersion, BrownoutLevel: 2})
	bc1, _ := stubBackend(t, "a", r1, 1)
	bc2, _ := stubBackend(t, "b", r2, 1)
	g, ts := startGateway(t, Config{Backends: []BackendConfig{bc1, bc2}})
	g.ProbeOnce(context.Background())

	post := func(class string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"prompt": []int{1}, "max_tokens": 2, "class": class})
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// min(1, 2) = 1: batch (class 0) shed at the edge, rag and
	// interactive still routed.
	if resp := post("batch"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch under fleet brownout: status %d, want 503", resp.StatusCode)
	} else if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("fleet brownout Retry-After %q, want %q (the default 2s)", ra, "2")
	}
	for _, class := range []string{"rag", "interactive", ""} {
		if resp := post(class); resp.StatusCode != http.StatusOK {
			t.Fatalf("class %q under level-1 fleet brownout: status %d, want 200", class, resp.StatusCode)
		}
	}
	// One replica recovering (level 0) reopens the edge for batch.
	r1.setStatz(server.Stats{SchemaVersion: server.StatzSchemaVersion, BrownoutLevel: 0})
	g.ProbeOnce(context.Background())
	if resp := post("batch"); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch after one replica recovered: status %d, want 200", resp.StatusCode)
	}
	// An unknown class never reaches the fleet: 400, bad_requests, no
	// class row.
	if resp := post("premium"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown class: status %d, want 400", resp.StatusCode)
	}

	st := g.Stats()
	if st.ShedBrownout != 1 || st.Classes[serve.ClassBatch].ShedBrownout != 1 {
		t.Fatalf("brownout sheds global %d batch-row %d, want 1/1", st.ShedBrownout, st.Classes[serve.ClassBatch].ShedBrownout)
	}
	if st.BadRequests != 1 {
		t.Fatalf("bad requests %d, want 1", st.BadRequests)
	}
	if st.Classes[serve.ClassInteractive].Admitted != 2 { // explicit + defaulted ""
		t.Fatalf("interactive admitted %d, want 2", st.Classes[serve.ClassInteractive].Admitted)
	}
	if !st.Conserved() {
		t.Fatalf("fleet ledger not conserved: %+v", st)
	}
}
