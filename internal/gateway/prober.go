package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"helmsim/internal/server"
)

// ProbeConfig tunes per-replica health probing. Zero values take the
// documented defaults, so the zero config is usable.
type ProbeConfig struct {
	// Interval is the probe period of the background loop started by
	// Start (default 250ms).
	Interval time.Duration
	// Timeout bounds each probe HTTP call (default 2s).
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that flips a
	// replica out of rotation (default 3). One lost probe on a loaded
	// network must not evict a healthy replica.
	FailThreshold int
	// PassThreshold is the consecutive-pass count that flips a replica
	// back in (default 1): recovery is immediate by default because the
	// failover path keeps clients safe even if the replica flaps.
	PassThreshold int
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Interval == 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 3
	}
	if c.PassThreshold == 0 {
		c.PassThreshold = 1
	}
	return c
}

// Validate rejects unusable probe configurations (after defaulting).
func (c ProbeConfig) Validate() error {
	c = c.withDefaults()
	if c.Interval < 0 {
		return fmt.Errorf("gateway: negative probe interval %v", c.Interval)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("gateway: negative probe timeout %v", c.Timeout)
	}
	if c.FailThreshold < 1 {
		return fmt.Errorf("gateway: probe fail threshold %d < 1", c.FailThreshold)
	}
	if c.PassThreshold < 1 {
		return fmt.Errorf("gateway: probe pass threshold %d < 1", c.PassThreshold)
	}
	return nil
}

// Start runs the probe loop until ctx is cancelled: an immediate round,
// then one every Probe.Interval. It returns a done channel that closes
// when the loop (and its in-flight round) has exited.
func (g *Gateway) Start(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.ProbeOnce(ctx)
		t := time.NewTicker(g.cfg.Probe.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.ProbeOnce(ctx)
			}
		}
	}()
	return done
}

// ProbeOnce runs one synchronous probe round over every replica (in
// parallel; the round returns when the slowest probe settles). Tests
// call it directly to advance health state deterministically.
func (g *Gateway) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			g.probeBackend(ctx, b)
		}(b)
	}
	wg.Wait()
}

// probeBackend probes one replica: GET /readyz decides reachability and
// drain state, then GET /statz refreshes the load/generation snapshot
// the routers and /fleetz read. A 503 readiness refusal is a healthy
// replica declining traffic — its own graceful drain — so it resets the
// failure streak but leaves the replica out of rotation; only an
// unreachable or misbehaving replica counts toward FailThreshold.
func (g *Gateway) probeBackend(ctx context.Context, b *Backend) {
	now := g.now()
	b.mu.Lock()
	if now.Before(b.nextProbeAt) {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()

	b.probes.Add(1)
	status, retryAfter, err := g.probeReadyz(ctx, b)

	var st *server.Stats
	reachable := err == nil && (status == http.StatusOK || status == http.StatusServiceUnavailable)
	if reachable {
		st = g.probeStatz(ctx, b)
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if st != nil {
		b.lastStats, b.haveStats = *st, true
	}
	switch {
	case err != nil, !reachable:
		b.probeFailures.Add(1)
		b.consecPasses = 0
		b.consecFails++
		if b.consecFails >= g.cfg.Probe.FailThreshold {
			b.ready = false
		}
		// An unreachable replica says nothing about drain intent; keep
		// the last known drain state.
	case status == http.StatusServiceUnavailable:
		// Draining: deliberately out of rotation, but alive — the streak
		// toward unhealthy resets, and the prober honors the replica's
		// Retry-After back-off like any other client.
		b.draining = true
		b.consecFails = 0
		b.consecPasses++
		if b.consecPasses >= g.cfg.Probe.PassThreshold {
			b.ready = true
		}
		if retryAfter > 0 {
			b.nextProbeAt = now.Add(retryAfter)
		}
	default: // 200
		b.draining = false
		b.nextProbeAt = time.Time{}
		b.consecFails = 0
		b.consecPasses++
		if b.consecPasses >= g.cfg.Probe.PassThreshold {
			b.ready = true
		}
	}
}

// probeReadyz fetches the replica's readiness verdict and any
// Retry-After back-off it advertises.
func (g *Gateway) probeReadyz(ctx context.Context, b *Backend) (status int, retryAfter time.Duration, err error) {
	rctx, cancel := context.WithTimeout(ctx, g.cfg.Probe.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, b.baseURL+"/readyz", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxRelayBody))
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// probeStatz fetches the replica's /statz snapshot, or nil when it
// cannot be read or speaks an incompatible schema. A stats failure
// never flips health on its own — readiness already answered — it only
// leaves the snapshot stale.
func (g *Gateway) probeStatz(ctx context.Context, b *Backend) *server.Stats {
	rctx, cancel := context.WithTimeout(ctx, g.cfg.Probe.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, b.baseURL+"/statz", nil)
	if err != nil {
		return nil
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxRelayBody))
		return nil
	}
	var st server.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRelayBody)).Decode(&st); err != nil {
		return nil
	}
	// Version-gated, not version-pinned: any schema in the supported
	// window decodes — a v2 replica simply leaves the v3 cost/brownout
	// fields zero, which every consumer treats as "no signal". Outside
	// the window the snapshot is discarded rather than misread.
	if st.SchemaVersion < server.StatzSchemaVersionMin || st.SchemaVersion > server.StatzSchemaVersion {
		return nil
	}
	return &st
}
