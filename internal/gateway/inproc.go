package gateway

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// HandlerTransport is an http.RoundTripper that serves every round trip
// directly from an http.Handler — no listener, no socket, no port. It
// is how a gateway fronts in-process server.Server replicas: each
// replica's BackendConfig.Client wraps its Handler() in one of these,
// and the whole fleet runs in a single process with the identical HTTP
// contract a remote fleet would speak (including the fault package's
// RoundTripper chaos layer, which composes on top unchanged).
type HandlerTransport struct {
	Handler http.Handler
}

// RoundTrip implements http.RoundTripper by invoking the handler
// synchronously. The request context flows through unchanged, so
// client cancellation and per-attempt timeouts behave exactly as over
// a socket.
func (t HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Handler == nil {
		return nil, fmt.Errorf("gateway: HandlerTransport with nil handler")
	}
	rw := &memResponseWriter{header: make(http.Header), status: http.StatusOK}
	t.Handler.ServeHTTP(rw, req)
	return &http.Response{
		Status:        http.StatusText(rw.status),
		StatusCode:    rw.status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rw.header,
		Body:          io.NopCloser(bytes.NewReader(rw.buf.Bytes())),
		ContentLength: int64(rw.buf.Len()),
		Request:       req,
	}, nil
}

// memResponseWriter is the minimal in-memory http.ResponseWriter behind
// HandlerTransport.
type memResponseWriter struct {
	header      http.Header
	status      int
	wroteHeader bool
	buf         bytes.Buffer
}

func (w *memResponseWriter) Header() http.Header { return w.header }

func (w *memResponseWriter) WriteHeader(status int) {
	if w.wroteHeader {
		return
	}
	w.wroteHeader = true
	w.status = status
}

func (w *memResponseWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.buf.Write(p)
}
