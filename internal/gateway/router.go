package gateway

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Router picks a replica for one forward attempt from the eligible
// candidates. Pick is called with a non-empty candidate slice already
// filtered for health, rotation, and this request's exclusion set (a
// failover retry never sees the replica that just failed it), in the
// gateway's fixed configuration order. Implementations must be safe for
// concurrent use and deterministic given their own state — routing
// decisions must replay, like everything else in this codebase.
type Router interface {
	Name() string
	Pick(cands []*Backend) *Backend
}

// Routing algorithm names accepted by NewRouter (and helmgw -route).
const (
	RouteRoundRobin = "round-robin"
	RouteLeastLoad  = "least-load"
	RouteWeighted   = "weighted"
)

// NewRouter builds a routing algorithm by name. The empty name defaults
// to round-robin.
func NewRouter(name string) (Router, error) {
	switch name {
	case "", RouteRoundRobin:
		return &roundRobin{}, nil
	case RouteLeastLoad:
		return leastLoad{}, nil
	case RouteWeighted:
		return &weighted{cur: make(map[*Backend]int)}, nil
	}
	return nil, fmt.Errorf("gateway: unknown routing algorithm %q (want %s, %s, or %s)",
		name, RouteRoundRobin, RouteLeastLoad, RouteWeighted)
}

// roundRobin cycles a global counter over whatever candidate set each
// pick sees. With a stable fleet this is a strict rotation; with
// replicas dropping in and out it degrades gracefully to an even spread
// rather than stalling on membership changes.
type roundRobin struct{ n atomic.Uint64 }

func (r *roundRobin) Name() string { return RouteRoundRobin }

func (r *roundRobin) Pick(cands []*Backend) *Backend {
	return cands[int((r.n.Add(1)-1)%uint64(len(cands)))]
}

// leastLoad picks the replica with the fewest outstanding requests:
// the gateway's own in-flight count plus the queue depth from the last
// /statz probe (the replica-side backlog the gateway cannot see from
// its own accounting), refined by the replica's advertised cost backlog
// in estimated tokens so two replicas with equal request counts but
// unequal work are told apart. Ties break toward configuration order,
// keeping the decision deterministic.
type leastLoad struct{}

func (leastLoad) Name() string { return RouteLeastLoad }

func (leastLoad) Pick(cands []*Backend) *Backend {
	best := cands[0]
	bestScore := load(best)
	for _, b := range cands[1:] {
		if s := load(b); s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// load scores a replica for least-load routing. The request count
// dominates (scaled so one queued request outweighs any realistic
// per-request token estimate) and the advertised cost backlog breaks
// ties between equally-deep replicas; a replica that advertises no cost
// signal (pre-probe, or a v2 replica) scores on counts alone.
func load(b *Backend) int64 {
	return (b.inflight.Load()+int64(b.queueDepth()))<<10 + b.costBacklog()
}

// weighted is smooth weighted round-robin over the configured tier
// weights: each pick raises every candidate's current score by its
// weight, takes the highest, and lowers the winner by the candidate
// total. The sequence interleaves replicas proportionally to weight —
// a DRAM-tier replica at weight 4 takes four slots to an SSD-tier
// replica's one, spread evenly rather than in bursts — and is exactly
// reproducible.
type weighted struct {
	mu  sync.Mutex
	cur map[*Backend]int
}

func (w *weighted) Name() string { return RouteWeighted }

func (w *weighted) Pick(cands []*Backend) *Backend {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	best := cands[0]
	for _, b := range cands {
		w.cur[b] += b.weight
		total += b.weight
		if w.cur[b] > w.cur[best] {
			best = b
		}
	}
	w.cur[best] -= total
	return best
}
