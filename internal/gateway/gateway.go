// Package gateway is the fleet front end over N serving replicas: a
// stdlib-only HTTP gateway routing generate requests across helmd
// daemons (remote URLs or in-process server.Server instances) with
// pluggable routing, per-replica health probing and circuit breaking,
// bounded failover retries, and administrative drain-out of replicas.
//
// Robustness is the contract, lifted from the per-replica guarantees
// the daemon already enforces to fleet level: a replica can crash,
// hot-reload, brown out, or drain without a single client-visible
// failure, because generate requests are idempotent — the engine is
// deterministic, so re-running a request on a different replica over
// the same checkpoint yields byte-identical tokens — and the gateway
// retries a transiently failed forward on a different healthy replica,
// never the one that just failed. The fleet ledger conserves: every
// arrival is finalized by exactly one replica or lands in exactly one
// gateway shed bucket (serve.FleetConserved), composing with each
// replica's own serve.Conserved admission ledger.
package gateway

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"helmsim/internal/infer"
	"helmsim/internal/serve"
	"helmsim/internal/server"
)

// Config describes a gateway.
type Config struct {
	// Backends are the replicas fronted (at least one; names unique).
	Backends []BackendConfig
	// Route names the routing algorithm: round-robin (default),
	// least-load, or weighted.
	Route string
	// MaxFailovers bounds retries of a failed forward onto other
	// replicas: a request is attempted on at most 1+MaxFailovers
	// distinct replicas (default: len(Backends)-1 — every other replica
	// gets one chance; negative disables failover entirely).
	MaxFailovers int
	// ForwardTimeout is the per-attempt deadline for one replica
	// forward (default 30s). The client's own context still applies.
	ForwardTimeout time.Duration
	// Backoff paces failover retries (1-based attempt); nil uses the
	// engine's deterministic infer.DefaultBackoff.
	Backoff func(attempt int) time.Duration
	// Sleep is the injectable clock for failover pacing; nil uses
	// time.Sleep.
	Sleep func(time.Duration)
	// Probe tunes health probing.
	Probe ProbeConfig
	// DrainRetryAfter is the Retry-After advertised on gateway-draining
	// and no-healthy-backend 503s (default 1s).
	DrainRetryAfter time.Duration
	// BrownoutRetryAfter is the Retry-After advertised on fleet-level
	// brownout sheds (default 2s, matching the replica daemon's own
	// brownout contract).
	BrownoutRetryAfter time.Duration
	// Now is the injectable wall clock for probe bookkeeping; nil uses
	// time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Route == "" {
		c.Route = RouteRoundRobin
	}
	if c.MaxFailovers == 0 {
		c.MaxFailovers = len(c.Backends) - 1
	}
	if c.MaxFailovers < 0 {
		c.MaxFailovers = 0
	}
	if c.ForwardTimeout == 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	if c.Backoff == nil {
		c.Backoff = infer.DefaultBackoff
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.DrainRetryAfter == 0 {
		c.DrainRetryAfter = time.Second
	}
	if c.BrownoutRetryAfter == 0 {
		c.BrownoutRetryAfter = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	c.Probe = c.Probe.withDefaults()
	return c
}

// Validate rejects unusable configurations (after defaulting).
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("gateway: no backends")
	}
	names := make(map[string]bool, len(c.Backends))
	for _, b := range c.Backends {
		if err := b.Validate(); err != nil {
			return err
		}
		if names[b.Name] {
			return fmt.Errorf("gateway: duplicate backend name %q", b.Name)
		}
		names[b.Name] = true
	}
	if _, err := NewRouter(c.Route); err != nil {
		return err
	}
	if c.ForwardTimeout < 0 {
		return fmt.Errorf("gateway: negative forward timeout %v", c.ForwardTimeout)
	}
	if c.DrainRetryAfter < 0 {
		return fmt.Errorf("gateway: negative drain retry-after %v", c.DrainRetryAfter)
	}
	if c.BrownoutRetryAfter < 0 {
		return fmt.Errorf("gateway: negative brownout retry-after %v", c.BrownoutRetryAfter)
	}
	return c.Probe.Validate()
}

// lifecycle states, mirroring the replica daemon's.
const (
	stateServing int32 = iota
	stateDraining
	stateStopped
)

// Gateway routes generate requests across a replica fleet.
type Gateway struct {
	cfg      Config
	backends []*Backend
	byName   map[string]*Backend
	router   Router
	now      func() time.Time

	// rootCtx anchors every forward; forceCancel fires when a drain
	// deadline expires, cutting off in-flight relays.
	rootCtx     context.Context
	forceCancel context.CancelFunc

	mu    sync.Mutex
	state int32
	// reqWG tracks in-flight client requests. Add happens under mu only
	// while serving, so Drain's Wait cannot race a late Add.
	reqWG sync.WaitGroup

	drainOnce sync.Once
	drainDone chan struct{}

	// Fleet ledger: arrivals == routed + every gateway shed bucket, and
	// routed == Σ per-backend finalized (serve.FleetConserved).
	arrivals        atomic.Int64
	routed          atomic.Int64
	retriedFailover atomic.Int64
	shedNoHealthy   atomic.Int64
	shedDraining    atomic.Int64
	shedBrownout    atomic.Int64
	badRequests     atomic.Int64
	// classes is the fleet's per-class ledger: one row per service
	// class, conserved by the same shared predicate the replica rows
	// satisfy. Rows count only classified arrivals — bad requests are
	// rejected before a class is known.
	classes [serve.NumClasses]fleetClassLedger
}

// fleetClassLedger is one class's fleet-level counters, mirroring
// serve.ClassCounts bucket for bucket ("admitted" here means routed to
// a replica that finalized the response — the replica's own ledger then
// itemizes its verdict).
type fleetClassLedger struct {
	arrivals, admitted, shedBrownout, shedOther atomic.Int64
}

// New builds a gateway. ctx anchors every forward: cancelling it (or a
// Drain deadline) cuts in-flight relays off.
func New(ctx context.Context, cfg Config) (*Gateway, error) {
	if ctx == nil {
		return nil, fmt.Errorf("gateway: nil context")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	router, err := NewRouter(cfg.Route)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:       cfg,
		byName:    make(map[string]*Backend, len(cfg.Backends)),
		router:    router,
		now:       cfg.Now,
		drainDone: make(chan struct{}),
	}
	for _, bc := range cfg.Backends {
		b, err := newBackend(bc)
		if err != nil {
			return nil, err
		}
		g.backends = append(g.backends, b)
		g.byName[b.name] = b
	}
	g.rootCtx, g.forceCancel = context.WithCancel(ctx)
	return g, nil
}

// Backend looks a replica up by name (nil when unknown) — the seam the
// in-process drain hook and tests use.
func (g *Gateway) Backend(name string) *Backend { return g.byName[name] }

// Router reports the active routing algorithm's name.
func (g *Gateway) Router() string { return g.router.Name() }

// Draining reports whether the gateway has left the serving state.
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state != stateServing
}

// fleetBrownoutLevel is the fleet's overload verdict for class-aware
// shedding at the gateway edge: the MINIMUM brownout level advertised
// across eligible replicas. A class is shed here only when every
// replica that could take the request would reject it anyway — shedding
// at the edge then saves the forward, the failover sweep, and the
// replica work, while a single replica with headroom keeps the class
// alive. Replicas without a cost signal (pre-probe, v2) advertise 0, so
// a mixed fleet never browns out at the edge.
func (g *Gateway) fleetBrownoutLevel() int {
	level := -1
	for _, b := range g.backends {
		if !b.eligible() {
			continue
		}
		if l := b.brownoutLevel(); level < 0 || l < level {
			level = l
		}
	}
	if level < 0 {
		return 0
	}
	return level
}

// candidates returns the replicas in rotation, excluding this request's
// already-failed set, in configuration order.
func (g *Gateway) candidates(exclude map[*Backend]bool) []*Backend {
	var cands []*Backend
	for _, b := range g.backends {
		if exclude[b] || !b.eligible() {
			continue
		}
		cands = append(cands, b)
	}
	return cands
}

// retryableStatus reports whether a replica response should fail over
// to another replica rather than be relayed: the replica shed or failed
// the request, but a sibling over the same checkpoint may serve it —
// and idempotency makes the re-attempt safe. Client errors (4xx other
// than 429) and successes are final everywhere.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// route runs one client request through the fleet: pick a replica,
// forward, and on a transport failure or retryable shed fail over to a
// different healthy replica — never one already tried — up to the
// failover budget. It returns the response to relay and the backend
// that finalized it, or (nil, nil) when the request must be shed (no
// replica could even be attempted). When every attempted replica
// answered with a retryable shed, the last such response is relayed —
// the fleet is saturated, and the replica's own 429/503 with its
// Retry-After is the most informative answer the client can get.
func (g *Gateway) route(ctx context.Context, body []byte) (*relayed, *Backend) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Force-drain reaches in-flight forwards through the gateway root
	// context without parenting every request under it.
	stop := context.AfterFunc(g.rootCtx, cancel)
	defer stop()

	tried := make(map[*Backend]bool, len(g.backends))
	var last *relayed
	var lastBackend *Backend
	forwards := 0
	for forwards <= g.cfg.MaxFailovers {
		cands := g.candidates(tried)
		if len(cands) == 0 {
			break
		}
		b := g.router.Pick(cands)
		probe, ok := b.breaker.Allow()
		if !ok {
			// Breaker open: this replica is out for this request, but the
			// skip costs no forward attempt.
			tried[b] = true
			continue
		}
		if forwards > 0 {
			g.retriedFailover.Add(1)
			b.failoverSleep(g, forwards)
		}
		forwards++
		b.attempts.Add(1)
		rl, err := g.forwardOnce(ctx, b, body)
		if err != nil {
			// Transport-level failure: the replica never answered. Feed the
			// breaker, settle the probe slot, and fail over.
			b.breaker.Record(err)
			if probe {
				b.breaker.ProbeDone(false)
			}
			tried[b] = true
			if ctx.Err() != nil {
				// The client is gone or force-drain fired; retrying
				// elsewhere serves nobody.
				break
			}
			continue
		}
		// The replica answered: reachability is healthy whatever the
		// status — its own admission is the authority on load.
		b.breaker.Record(nil)
		if probe {
			b.breaker.ProbeDone(true)
		}
		if !retryableStatus(rl.status) {
			return rl, b
		}
		last, lastBackend = rl, b
		tried[b] = true
		b.failovers.Add(1)
		if ctx.Err() != nil {
			break
		}
	}
	if last != nil {
		return last, lastBackend
	}
	return nil, nil
}

// failoverSleep paces retry n (1-based) with the deterministic backoff.
func (b *Backend) failoverSleep(g *Gateway, n int) {
	if d := g.cfg.Backoff(n); d > 0 {
		g.cfg.Sleep(d)
	}
}

// forwardOnce runs one bounded forward attempt.
func (g *Gateway) forwardOnce(ctx context.Context, b *Backend, body []byte) (*relayed, error) {
	if g.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.ForwardTimeout)
		defer cancel()
	}
	return b.forward(ctx, body)
}

// Drain stops admission and waits for in-flight relays to finish. When
// ctx expires first, in-flight forwards are force-cancelled and the ctx
// error is returned. Drain is idempotent; concurrent calls all wait.
// The fronted replicas are not touched — draining the gateway says
// nothing about the fleet behind it.
func (g *Gateway) Drain(ctx context.Context) error {
	g.mu.Lock()
	if g.state == stateServing {
		g.state = stateDraining
	}
	g.mu.Unlock()

	var derr error
	done := make(chan struct{})
	go func() {
		g.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		g.forceCancel()
		<-done
		derr = fmt.Errorf("gateway: drain deadline expired, in-flight relays cancelled: %w", ctx.Err())
	}

	g.drainOnce.Do(func() {
		g.mu.Lock()
		g.state = stateStopped
		g.mu.Unlock()
		g.forceCancel() // release context resources even on a clean drain
		close(g.drainDone)
	})
	<-g.drainDone
	return derr
}

// DrainOut takes a replica out of rotation administratively: the
// router stops seeing it, in-flight forwards to it finish normally,
// and — unlike a breaker trip or probe failure — nothing the replica
// does brings it back until DrainIn. It composes with the replica's
// own graceful drain: drain it out here first, and its drain runs with
// no gateway traffic arriving at all. Idempotent; reports whether the
// replica was previously in rotation by this switch.
func (g *Gateway) DrainOut(name string) (wasIn bool, err error) {
	b := g.byName[name]
	if b == nil {
		return false, fmt.Errorf("gateway: unknown replica %q", name)
	}
	return !b.setAdminOut(true), nil
}

// DrainIn returns an administratively drained replica to rotation (its
// health probing verdict still applies). Idempotent.
func (g *Gateway) DrainIn(name string) (wasOut bool, err error) {
	b := g.byName[name]
	if b == nil {
		return false, fmt.Errorf("gateway: unknown replica %q", name)
	}
	return b.setAdminOut(false), nil
}

// FleetSchemaVersion identifies the /fleetz JSON schema, on the same
// contract as server.StatzSchemaVersion. v2 adds the brownout shed
// bucket and per-class rows — additive fields, but they extend the
// conservation identity, so the version bumps.
const FleetSchemaVersion = 2

// BackendStats is one replica's slice of the /fleetz document.
type BackendStats struct {
	Name         string `json:"name"`
	URL          string `json:"url"`
	Weight       int    `json:"weight"`
	Ready        bool   `json:"ready"`
	Draining     bool   `json:"draining"`
	AdminDrained bool   `json:"admin_drained"`

	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`

	Inflight  int64 `json:"inflight"`
	Attempts  int64 `json:"attempts"`
	Finalized int64 `json:"finalized"`
	Served    int64 `json:"served"`
	Failovers int64 `json:"failovers"`

	Breaker server.BreakerSnapshot `json:"breaker"`
	// Replica is the last probed /statz snapshot (nil before the first
	// successful stats probe).
	Replica *server.Stats `json:"replica,omitempty"`
}

// FleetStats is the /fleetz document: the gateway ledger plus
// per-replica attribution.
type FleetStats struct {
	SchemaVersion int    `json:"fleetz_version"`
	State         string `json:"state"`
	Route         string `json:"route"`

	Arrivals             int64 `json:"arrivals"`
	Routed               int64 `json:"routed"`
	RetriedFailover      int64 `json:"retried_failover"`
	ShedNoHealthyBackend int64 `json:"shed_no_healthy_backend"`
	ShedDraining         int64 `json:"shed_draining"`
	ShedBrownout         int64 `json:"shed_brownout"`
	BadRequests          int64 `json:"bad_requests"`

	// Classes is the fleet's per-class ledger: classified arrivals only
	// (Σ rows' arrivals == Arrivals - BadRequests), each row conserved.
	Classes []serve.ClassCounts `json:"classes"`

	Backends []BackendStats `json:"backends"`
}

// Conserved checks the fleet ledger: every gateway arrival must have
// been finalized by exactly one replica or landed in exactly one
// gateway shed bucket, with the per-replica attributions summing to the
// routed total. Like the replica predicate, it is guaranteed only at
// quiescence — under live traffic an arrival may not have settled into
// its bucket yet.
func (fs FleetStats) Conserved() bool {
	finals := make([]int, len(fs.Backends))
	total := int64(0)
	for i, b := range fs.Backends {
		finals[i] = int(b.Finalized)
		total += b.Finalized
	}
	if total != fs.Routed ||
		!serve.FleetConserved(int(fs.Arrivals), finals,
			int(fs.ShedNoHealthyBackend), int(fs.ShedDraining), int(fs.ShedBrownout), int(fs.BadRequests)) {
		return false
	}
	// The class rows must conserve individually and sum back to the
	// classified arrival count (bad requests never reach a class row).
	if !serve.ClassLedgerConserved(fs.Classes) {
		return false
	}
	var classArrivals int64
	for _, row := range fs.Classes {
		classArrivals += row.Arrivals
	}
	return classArrivals == fs.Arrivals-fs.BadRequests
}

// Stats snapshots the gateway's counters and every replica's state.
func (g *Gateway) Stats() FleetStats {
	g.mu.Lock()
	state := g.state
	g.mu.Unlock()
	name := "serving"
	switch state {
	case stateDraining:
		name = "draining"
	case stateStopped:
		name = "stopped"
	}
	fs := FleetStats{
		SchemaVersion:        FleetSchemaVersion,
		State:                name,
		Route:                g.router.Name(),
		Arrivals:             g.arrivals.Load(),
		Routed:               g.routed.Load(),
		RetriedFailover:      g.retriedFailover.Load(),
		ShedNoHealthyBackend: g.shedNoHealthy.Load(),
		ShedDraining:         g.shedDraining.Load(),
		ShedBrownout:         g.shedBrownout.Load(),
		BadRequests:          g.badRequests.Load(),
		Classes:              serve.NewClassLedger(),
	}
	for c := range g.classes {
		l := &g.classes[c]
		fs.Classes[c].Arrivals = l.arrivals.Load()
		fs.Classes[c].Admitted = l.admitted.Load()
		fs.Classes[c].ShedBrownout = l.shedBrownout.Load()
		fs.Classes[c].ShedOther = l.shedOther.Load()
	}
	for _, b := range g.backends {
		b.mu.Lock()
		bs := BackendStats{
			Name:         b.name,
			URL:          b.baseURL,
			Weight:       b.weight,
			Ready:        b.ready,
			Draining:     b.draining,
			AdminDrained: b.adminOut,
		}
		if b.haveStats {
			snap := b.lastStats
			bs.Replica = &snap
		}
		b.mu.Unlock()
		bs.Probes = b.probes.Load()
		bs.ProbeFailures = b.probeFailures.Load()
		bs.Inflight = b.inflight.Load()
		bs.Attempts = b.attempts.Load()
		bs.Finalized = b.finalized.Load()
		bs.Served = b.served.Load()
		bs.Failovers = b.failovers.Load()
		bs.Breaker = b.breaker.Snapshot()
		fs.Backends = append(fs.Backends, bs)
	}
	return fs
}
