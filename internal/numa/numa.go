// Package numa describes the two-socket topology of the evaluation platform
// (Table I) and enumerates the memory devices visible from each node. The
// GPU hangs off node 0's PCIe root complex (§IV-A), which is why the
// per-device bandwidth models in memdev derate remote accesses.
package numa

import (
	"fmt"

	"helmsim/internal/calib"
	"helmsim/internal/memdev"
)

// Topology is the host socket layout.
type Topology struct {
	// Nodes is the NUMA node count.
	Nodes int
	// GPUNode is the node whose PCIe root hosts the GPU.
	GPUNode int
	// CoresPerNode is the physical core count per socket.
	CoresPerNode int
}

// System returns the paper's evaluation topology: two sockets, 28 cores
// each, GPU on node 0.
func System() Topology {
	return Topology{Nodes: calib.NUMANodes, GPUNode: 0, CoresPerNode: calib.CoresPerSocket}
}

// Valid reports whether a node index exists in the topology.
func (t Topology) Valid(node int) bool { return node >= 0 && node < t.Nodes }

// String renders the topology on one line.
func (t Topology) String() string {
	return fmt.Sprintf("%d NUMA nodes, %d cores/node, GPU on node %d", t.Nodes, t.CoresPerNode, t.GPUNode)
}

// MemoryDevices enumerates every byte-addressable memory device of one node:
// its DRAM pool, its Optane pool (NVDRAM configuration) and its Memory Mode
// view. These are the lines swept in Fig. 3 for that node.
func (t Topology) MemoryDevices(node int) ([]memdev.Device, error) {
	if !t.Valid(node) {
		return nil, fmt.Errorf("numa: node %d outside topology (%d nodes)", node, t.Nodes)
	}
	return []memdev.Device{
		memdev.NewDRAM(node),
		memdev.NewOptane(node),
		memdev.NewMemoryMode(node),
	}, nil
}

// AllMemoryDevices enumerates the memory devices of every node, node-major
// (all of node 0, then node 1, ...).
func (t Topology) AllMemoryDevices() []memdev.Device {
	var out []memdev.Device
	for n := 0; n < t.Nodes; n++ {
		devs, _ := t.MemoryDevices(n)
		out = append(out, devs...)
	}
	return out
}
