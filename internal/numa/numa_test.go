package numa

import (
	"testing"

	"helmsim/internal/memdev"
)

func TestSystemTopology(t *testing.T) {
	top := System()
	if top.Nodes != 2 {
		t.Errorf("Nodes = %d, want 2", top.Nodes)
	}
	if top.GPUNode != 0 {
		t.Errorf("GPUNode = %d, want 0 (§IV-A)", top.GPUNode)
	}
	if top.CoresPerNode != 28 {
		t.Errorf("CoresPerNode = %d, want 28 (Table I)", top.CoresPerNode)
	}
	if top.String() == "" {
		t.Errorf("empty String()")
	}
}

func TestValid(t *testing.T) {
	top := System()
	for node, want := range map[int]bool{-1: false, 0: true, 1: true, 2: false} {
		if got := top.Valid(node); got != want {
			t.Errorf("Valid(%d) = %v, want %v", node, got, want)
		}
	}
}

func TestMemoryDevices(t *testing.T) {
	top := System()
	devs, err := top.MemoryDevices(1)
	if err != nil {
		t.Fatalf("MemoryDevices(1): %v", err)
	}
	if len(devs) != 3 {
		t.Fatalf("got %d devices, want 3 (DRAM, NVDRAM, MM)", len(devs))
	}
	kinds := map[memdev.Kind]bool{}
	for _, d := range devs {
		kinds[d.Kind()] = true
		if d.Node() != 1 {
			t.Errorf("%s on node %d, want 1", d.Name(), d.Node())
		}
	}
	for _, k := range []memdev.Kind{memdev.KindDRAM, memdev.KindOptane, memdev.KindMemoryMode} {
		if !kinds[k] {
			t.Errorf("missing kind %v", k)
		}
	}
	if _, err := top.MemoryDevices(5); err == nil {
		t.Errorf("out-of-range node should fail")
	}
}

func TestAllMemoryDevices(t *testing.T) {
	devs := System().AllMemoryDevices()
	if len(devs) != 6 {
		t.Fatalf("got %d devices, want 6 (3 kinds x 2 nodes)", len(devs))
	}
	names := map[string]bool{}
	for _, d := range devs {
		if names[d.Name()] {
			t.Errorf("duplicate device %s", d.Name())
		}
		names[d.Name()] = true
	}
}
