// Package units provides the value types shared by every subsystem of the
// simulator: byte sizes, bandwidths, and simulated durations.
//
// The simulator never sleeps; time is purely a computed quantity. Durations
// are kept as float64 seconds (type Duration) rather than time.Duration so
// that sub-nanosecond precision survives the long chains of divisions the
// cost models perform.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bytes is a size in bytes. Sizes in the simulator are always non-negative;
// constructors and model code validate this at the boundaries.
type Bytes int64

// Common byte quantities.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// GiBf reports the size in binary gigabytes as a float.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// MiBf reports the size in binary megabytes as a float.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }

// String renders the size with a human unit, e.g. "3.38 GiB".
func (b Bytes) String() string {
	neg := ""
	v := b
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= TiB:
		return fmt.Sprintf("%s%.2f TiB", neg, float64(v)/float64(TiB))
	case v >= GiB:
		return fmt.Sprintf("%s%.2f GiB", neg, float64(v)/float64(GiB))
	case v >= MiB:
		return fmt.Sprintf("%s%.2f MiB", neg, float64(v)/float64(MiB))
	case v >= KiB:
		return fmt.Sprintf("%s%.2f KiB", neg, float64(v)/float64(KiB))
	default:
		return fmt.Sprintf("%s%d B", neg, v)
	}
}

// ParseBytes parses strings like "256MiB", "4 GiB", "32GB", "1024" (bytes).
// Both binary (KiB/MiB/GiB/TiB) and decimal (KB/MB/GB/TB) suffixes are
// accepted; a bare number is bytes.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	units := []struct {
		suffix string
		mult   Bytes
	}{
		{"TiB", TiB}, {"GiB", GiB}, {"MiB", MiB}, {"KiB", KiB},
		{"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB},
		{"T", TiB}, {"G", GiB}, {"M", MiB}, {"K", KiB},
		{"B", 1},
	}
	for _, u := range units {
		if strings.HasSuffix(strings.ToLower(t), strings.ToLower(u.suffix)) {
			num := strings.TrimSpace(t[:len(t)-len(u.suffix)])
			f, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: parse %q: %v", s, err)
			}
			if f < 0 {
				return 0, fmt.Errorf("units: negative size %q", s)
			}
			return Bytes(f * float64(u.mult)), nil
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return Bytes(n), nil
}

// Duration is a simulated duration in seconds.
type Duration float64

// Common durations.
const (
	Nanosecond  Duration = 1e-9
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Milliseconds reports the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) * 1e3 }

// Microseconds reports the duration in microseconds.
func (d Duration) Microseconds() float64 { return float64(d) * 1e6 }

// String renders the duration with an auto-selected unit.
func (d Duration) String() string {
	v := float64(d)
	a := math.Abs(v)
	switch {
	case a == 0:
		return "0s"
	case a < 1e-6:
		return fmt.Sprintf("%.2fns", v*1e9)
	case a < 1e-3:
		return fmt.Sprintf("%.2fµs", v*1e6)
	case a < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// GBps constructs a bandwidth from decimal gigabytes per second, the unit
// used throughout the paper (e.g. PCIe Gen4 x16 = 32.0 GB/s).
func GBps(v float64) Bandwidth { return Bandwidth(v * 1e9) }

// GBpsf reports the bandwidth in decimal GB/s.
func (bw Bandwidth) GBpsf() float64 { return float64(bw) / 1e9 }

// String renders the bandwidth in GB/s.
func (bw Bandwidth) String() string { return fmt.Sprintf("%.2f GB/s", bw.GBpsf()) }

// TimeFor reports how long moving n bytes takes at this bandwidth.
// A non-positive bandwidth yields +Inf for a positive size (the transfer
// never completes) and 0 for an empty one.
func (bw Bandwidth) TimeFor(n Bytes) Duration {
	if n <= 0 {
		return 0
	}
	if bw <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(float64(n) / float64(bw))
}

// FLOPS is a compute rate in floating-point operations per second.
type FLOPS float64

// TFLOPS constructs a rate from teraflop/s.
func TFLOPS(v float64) FLOPS { return FLOPS(v * 1e12) }

// TimeFor reports how long executing flops operations takes at this rate.
func (f FLOPS) TimeFor(flops float64) Duration {
	if flops <= 0 {
		return 0
	}
	if f <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(flops / float64(f))
}
