package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
		err  bool
	}{
		{"256MiB", 256 * MiB, false},
		{"4 GiB", 4 * GiB, false},
		{"32GB", 32 * GB, false},
		{"1024", 1024, false},
		{"1.5GiB", GiB + 512*MiB, false},
		{"7B", 7, false},
		{"2K", 2 * KiB, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-5GiB", 0, true},
		{"-5", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBytes(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2 * KiB, "2.00 KiB"},
		{3 * MiB, "3.00 MiB"},
		{40 * GiB, "40.00 GiB"},
		{2 * TiB, "2.00 TiB"},
		{-3 * MiB, "-3.00 MiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBandwidthTimeFor(t *testing.T) {
	bw := GBps(32)
	got := bw.TimeFor(32 * GB)
	if math.Abs(got.Seconds()-1) > 1e-12 {
		t.Errorf("32 GB at 32 GB/s = %v, want 1s", got)
	}
	if d := bw.TimeFor(0); d != 0 {
		t.Errorf("zero bytes should take 0, got %v", d)
	}
	if d := Bandwidth(0).TimeFor(GiB); !math.IsInf(d.Seconds(), 1) {
		t.Errorf("zero bandwidth should take +Inf, got %v", d)
	}
}

func TestFLOPSTimeFor(t *testing.T) {
	f := TFLOPS(312) // A100 FP16 peak
	got := f.TimeFor(312e12)
	if math.Abs(got.Seconds()-1) > 1e-12 {
		t.Errorf("312 Tflop at 312 TFLOPS = %v, want 1s", got)
	}
	if d := f.TimeFor(0); d != 0 {
		t.Errorf("zero flops should take 0, got %v", d)
	}
	if d := FLOPS(0).TimeFor(1); !math.IsInf(d.Seconds(), 1) {
		t.Errorf("zero rate should take +Inf, got %v", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{0, "0s"},
		{3 * Nanosecond, "3.00ns"},
		{5 * Microsecond, "5.00µs"},
		{7 * Millisecond, "7.00ms"},
		{2.5 * Second, "2.500s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%g).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

// Property: TimeFor is linear in bytes — doubling the payload doubles the
// time at any positive bandwidth.
func TestBandwidthLinearityProperty(t *testing.T) {
	f := func(gbps uint8, mib uint16) bool {
		bw := GBps(float64(gbps%100) + 1)
		n := Bytes(mib) * MiB
		t1 := bw.TimeFor(n)
		t2 := bw.TimeFor(2 * n)
		return math.Abs(t2.Seconds()-2*t1.Seconds()) < 1e-9*math.Max(1, t2.Seconds())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseBytes round-trips sizes printed in whole MiB.
func TestParseBytesRoundTripProperty(t *testing.T) {
	f := func(mib uint16) bool {
		n := Bytes(mib) * MiB
		got, err := ParseBytes((Bytes(mib)).stringMiB())
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// stringMiB renders a count as "<n>MiB" for the round-trip property test.
func (b Bytes) stringMiB() string { return itoa(int64(b)) + "MiB" }

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [24]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
