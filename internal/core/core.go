// Package core is the out-of-core inference engine: it binds a model, a
// memory configuration (Table II), a weight-placement policy and a batch
// size into one executable run on the simulated platform, enforcing the
// real capacity constraints (host memory, GPU memory, batch cap) that shape
// the paper's results.
package core

import (
	"fmt"

	"helmsim/internal/calib"
	"helmsim/internal/gpu"
	"helmsim/internal/kvcache"
	"helmsim/internal/memdev"
	"helmsim/internal/model"
	"helmsim/internal/placement"
	"helmsim/internal/quant"
	"helmsim/internal/sched"
	"helmsim/internal/units"
	"helmsim/internal/xfer"
)

// MemoryConfig selects one of the paper's host memory configurations
// (Table II) or a projected CXL expander (Table III).
type MemoryConfig int

// Memory configurations.
const (
	// MemDRAM: weights in DDR4 DRAM.
	MemDRAM MemoryConfig = iota
	// MemNVDRAM: weights in Optane exposed as a flat memory NUMA node.
	MemNVDRAM
	// MemMemoryMode: Optane main memory with DRAM as direct-mapped cache.
	MemMemoryMode
	// MemSSD: spilled weights on an NVMe SSD, host tier in DRAM.
	MemSSD
	// MemFSDAX: spilled weights on Optane via ext4-DAX, host tier in DRAM.
	MemFSDAX
	// MemCXLFPGA: host tier on the FPGA-controller CXL expander.
	MemCXLFPGA
	// MemCXLASIC: host tier on the ASIC-controller CXL expander.
	MemCXLASIC
)

// String names the configuration with the paper's labels.
func (m MemoryConfig) String() string {
	switch m {
	case MemDRAM:
		return "DRAM"
	case MemNVDRAM:
		return "NVDRAM"
	case MemMemoryMode:
		return "MemoryMode"
	case MemSSD:
		return "SSD"
	case MemFSDAX:
		return "FSDAX"
	case MemCXLFPGA:
		return "CXL-FPGA"
	case MemCXLASIC:
		return "CXL-ASIC"
	default:
		return fmt.Sprintf("MemoryConfig(%d)", int(m))
	}
}

// ParseMemoryConfig resolves a configuration label.
func ParseMemoryConfig(s string) (MemoryConfig, error) {
	for _, m := range []MemoryConfig{MemDRAM, MemNVDRAM, MemMemoryMode, MemSSD, MemFSDAX, MemCXLFPGA, MemCXLASIC} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown memory config %q", s)
}

// Devices instantiates the tier devices of the configuration. The GPU pulls
// through NUMA node 0 (§IV-A), so node-0 devices model the LLM runs.
func (m MemoryConfig) Devices() (sched.TierDevices, error) {
	switch m {
	case MemDRAM:
		return sched.TierDevices{CPU: memdev.NewDRAM(0)}, nil
	case MemNVDRAM:
		return sched.TierDevices{CPU: memdev.NewOptane(0)}, nil
	case MemMemoryMode:
		return sched.TierDevices{CPU: memdev.NewMemoryMode(0)}, nil
	case MemSSD:
		return sched.TierDevices{CPU: memdev.NewDRAM(0), Disk: memdev.NewSSD()}, nil
	case MemFSDAX:
		return sched.TierDevices{CPU: memdev.NewDRAM(0), Disk: memdev.NewFSDAX(0)}, nil
	case MemCXLFPGA:
		return sched.TierDevices{CPU: memdev.NewCXL("CXL-FPGA", calib.CXLFPGABandwidth, units.TiB)}, nil
	case MemCXLASIC:
		return sched.TierDevices{CPU: memdev.NewCXL("CXL-ASIC", calib.CXLASICBandwidth, units.TiB)}, nil
	default:
		return sched.TierDevices{}, fmt.Errorf("core: unknown memory config %d", int(m))
	}
}

// hostNodes is how many NUMA nodes' worth of capacity the host tier spans:
// FlexGen interleaves pinned weights across both sockets' pools.
const hostNodes = 2

// RunConfig is one experiment point.
type RunConfig struct {
	// Model is the served model.
	Model model.Config
	// Memory is the host memory configuration.
	Memory MemoryConfig
	// Policy is the weight placement policy. Nil selects the paper's
	// default for the model/config (DefaultPolicy).
	Policy placement.Policy
	// Batch is the batch size; it must fit the GPU memory budget.
	Batch int
	// PromptLen and GenLen default to the paper's 128/21 when zero.
	PromptLen, GenLen int
	// Compress enables group-wise 4-bit quantization of all weights.
	Compress bool
}

// Canonical returns the configuration with every defaulted field resolved:
// the paper's 128/21 prompt/generation lengths and the model/memory default
// policy. Two configurations that canonicalize identically run identically,
// which is the equivalence the run cache keys on.
func (rc RunConfig) Canonical() RunConfig {
	if rc.PromptLen == 0 {
		rc.PromptLen = calib.PromptLen
	}
	if rc.GenLen == 0 {
		rc.GenLen = calib.GenLen
	}
	if rc.Policy == nil {
		rc.Policy = DefaultPolicy(rc.Model, rc.Memory, rc.Compress)
	}
	return rc
}

// defaultGPUWeightBudget caps the GPU weight bytes a default placement may
// claim, leaving room for staging, KV cache and reserve on the 40 GB A100.
const defaultGPUWeightBudget = 31 * units.GB

// sizerFor maps weight specs to their stored size under the compression
// setting; compressed runs also get the quantizer configuration driving
// the schedule's dequantization cost.
func sizerFor(compress bool) (placement.Sizer, *quant.Config) {
	if !compress {
		return placement.RawSizer, nil
	}
	c := quant.Default()
	return func(s model.WeightSpec) units.Bytes { return c.CompressedBytes(s.Elems) }, &c
}

// solveBudget derives a placement's GPU memory plan: the resident weight
// bytes, the double-buffered staging allocation for the largest off-GPU
// layer, and the largest batch the remaining budget admits. Run and
// MaxBatchFor share it so the two paths cannot drift.
func solveBudget(rc RunConfig, mp *placement.ModelPlacement, sizer placement.Sizer) (gpuBytes, staging units.Bytes, maxBatch int, err error) {
	gpuBytes = mp.TotalOn(placement.TierGPU, sizer)
	var maxOffGPU units.Bytes
	for _, lp := range mp.Layers {
		off := lp.BytesOn(placement.TierCPU, sizer) + lp.BytesOn(placement.TierDisk, sizer)
		if off > maxOffGPU {
			maxOffGPU = off
		}
	}
	staging = units.Bytes(calib.StagingBufferCount) * maxOffGPU
	maxBatch, err = kvcache.MaxBatch(rc.Model, rc.PromptLen, rc.GenLen, kvcache.DefaultBudget(gpuBytes, staging))
	return gpuBytes, staging, maxBatch, err
}

// DefaultPolicy is the paper's placement for each model/memory pair: the
// (65, 15, 20) storage split on SSD/FSDAX, and otherwise the largest GPU
// percentage from the {50, 40, 30, 20, 10} ladder whose *achieved*
// allocation (the chunky cumsum outcome, §V-A) fits the GPU weight budget.
// The ladder sizes candidates with the run's stored weight size — 4-bit
// compressed runs pack ~4x more weights per rung — so compressed and
// uncompressed runs each get the largest default the budget truly admits.
// Uncompressed, the ladder lands on the paper's choices: (0, 50, 50) for
// OPT-30B, (0, 80, 20) for OPT-175B.
func DefaultPolicy(m model.Config, mem MemoryConfig, compress bool) placement.Policy {
	if mem == MemSSD || mem == MemFSDAX {
		return placement.Baseline{DiskPct: 65, CPUPct: 15, GPUPct: 20}
	}
	sizer, _ := sizerFor(compress)
	for _, g := range []float64{50, 40, 30, 20, 10} {
		cand := placement.Baseline{DiskPct: 0, CPUPct: 100 - g, GPUPct: g}
		mp, err := placement.PlaceModel(cand, m)
		if err != nil {
			continue
		}
		if mp.TotalOn(placement.TierGPU, sizer) <= defaultGPUWeightBudget {
			return cand
		}
	}
	// Nothing fits: keep everything on the host.
	return placement.Baseline{DiskPct: 0, CPUPct: 100, GPUPct: 0}
}

// RunResult couples the schedule simulation with the placement and
// capacity analysis that produced it.
type RunResult struct {
	*sched.Result
	// Placement is the resolved weight placement.
	Placement *placement.ModelPlacement
	// GPUWeightBytes is the stored GPU-resident weight footprint.
	GPUWeightBytes units.Bytes
	// StagingBytes is the weight staging allocation.
	StagingBytes units.Bytes
	// MaxBatch is the largest batch the GPU budget admits under this
	// placement.
	MaxBatch int
	// Compressed echoes the compression setting.
	Compressed bool
}

// Run executes one configuration end to end: place weights, verify
// capacities, solve the batch budget and simulate the schedule.
func Run(rc RunConfig) (*RunResult, error) {
	rc = rc.Canonical()
	devs, err := rc.Memory.Devices()
	if err != nil {
		return nil, err
	}
	mp, err := placement.PlaceModel(rc.Policy, rc.Model)
	if err != nil {
		return nil, err
	}

	sizer, qc := sizerFor(rc.Compress)

	// Host/storage capacity checks: the host tier spans both sockets.
	cpuBytes := mp.TotalOn(placement.TierCPU, sizer)
	if cap := devs.CPU.Capacity() * hostNodes; cpuBytes > cap {
		return nil, fmt.Errorf("core: %s cannot hold %v of host-tier weights (capacity %v): %s",
			devs.CPU.Name(), cpuBytes, cap, capacityHint(rc))
	}
	if diskBytes := mp.TotalOn(placement.TierDisk, sizer); diskBytes > 0 {
		if devs.Disk == nil {
			return nil, fmt.Errorf("core: policy %s spills %v to storage but %s has no storage tier",
				rc.Policy.Name(), diskBytes, rc.Memory)
		}
		if diskBytes > devs.Disk.Capacity() {
			return nil, fmt.Errorf("core: %s cannot hold %v of spilled weights", devs.Disk.Name(), diskBytes)
		}
	}

	// GPU budget: resident weights + double-buffered staging of the
	// largest off-GPU layer.
	gpuBytes, staging, maxBatch, err := solveBudget(rc, mp, sizer)
	if err != nil {
		return nil, err
	}
	if rc.Batch <= 0 {
		return nil, fmt.Errorf("core: non-positive batch %d", rc.Batch)
	}
	if rc.Batch > maxBatch {
		return nil, fmt.Errorf("core: batch %d exceeds the GPU budget's cap of %d for %s/%s (weights %v + staging %v on a %v GPU)",
			rc.Batch, maxBatch, rc.Model.Name, rc.Policy.Name(), gpuBytes, staging, kvcache.DefaultBudget(gpuBytes, staging).Capacity)
	}

	res, err := sched.Run(sched.Options{
		Model:       rc.Model,
		Placement:   mp,
		Devices:     devs,
		GPU:         gpu.NewA100(),
		Engine:      xfer.New(),
		Batch:       rc.Batch,
		PromptLen:   rc.PromptLen,
		GenLen:      rc.GenLen,
		Compression: qc,
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Result:         res,
		Placement:      mp,
		GPUWeightBytes: gpuBytes,
		StagingBytes:   staging,
		MaxBatch:       maxBatch,
		Compressed:     rc.Compress,
	}, nil
}

// capacityHint explains the paper's corresponding observation for common
// capacity failures.
func capacityHint(rc RunConfig) string {
	if rc.Memory == MemDRAM && !rc.Compress {
		return "uncompressed OPT-175B exceeds system DRAM; the paper has no DRAM configuration for it (§IV-B) — enable compression or use NVDRAM/MemoryMode/storage"
	}
	return "reduce the host percentage or enable compression"
}

// MaxBatchFor solves the batch cap for a configuration without running it.
func MaxBatchFor(rc RunConfig) (int, error) {
	rc = rc.Canonical()
	mp, err := placement.PlaceModel(rc.Policy, rc.Model)
	if err != nil {
		return 0, err
	}
	sizer, _ := sizerFor(rc.Compress)
	_, _, maxBatch, err := solveBudget(rc, mp, sizer)
	return maxBatch, err
}
