package core

import (
	"testing"
	"testing/quick"

	"helmsim/internal/model"
	"helmsim/internal/placement"
)

// The full configuration matrix: every model x memory x policy x
// compression combination either runs to sane metrics or fails with a
// capacity explanation — never panics, never returns garbage.
func TestConfigurationMatrix(t *testing.T) {
	models := []model.Config{model.OPT6B7(), model.OPT30B(), model.OPT175B(), model.Llama2_70B()}
	memories := []MemoryConfig{MemDRAM, MemNVDRAM, MemMemoryMode, MemSSD, MemFSDAX, MemCXLFPGA, MemCXLASIC}
	policies := []placement.Policy{
		nil, // per-config default
		placement.HeLM{Default: placement.Baseline{CPUPct: 80, GPUPct: 20}},
		placement.AllCPU{},
	}
	ran, rejected := 0, 0
	for _, m := range models {
		for _, mem := range memories {
			for _, pol := range policies {
				for _, compress := range []bool{false, true} {
					rc := RunConfig{Model: m, Memory: mem, Policy: pol, Batch: 1, Compress: compress}
					res, err := Run(rc)
					if err != nil {
						rejected++
						continue
					}
					ran++
					if res.TTFT <= 0 || res.TBT <= 0 || res.Throughput <= 0 {
						t.Fatalf("%s/%s/%v compress=%v: bad metrics %+v",
							m.Name, mem, pol, compress, res.Result)
					}
					if res.TotalTime < res.TTFT {
						t.Fatalf("%s/%s: total %v below TTFT %v", m.Name, mem, res.TotalTime, res.TTFT)
					}
				}
			}
		}
	}
	if ran < 100 {
		t.Errorf("only %d matrix points ran (%d rejected) — matrix too thin", ran, rejected)
	}
	// At least the documented capacity rejection must occur.
	if rejected == 0 {
		t.Errorf("no capacity rejections — uncompressed OPT-175B on DRAM should fail")
	}
}

// Property: with everything else fixed, a faster host tier never increases
// TTFT or TBT (DRAM <= MemoryMode <= NVDRAM <= CXL-FPGA in time for the
// compressed OPT-175B).
func TestFasterTierNeverSlower(t *testing.T) {
	order := []MemoryConfig{MemDRAM, MemMemoryMode, MemNVDRAM, MemCXLFPGA}
	var prevTTFT, prevTBT float64
	for i, mem := range order {
		res, err := Run(RunConfig{Model: model.OPT175B(), Memory: mem, Batch: 1, Compress: true})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if res.TTFT.Seconds() < prevTTFT-1e-9 || res.TBT.Seconds() < prevTBT-1e-9 {
				t.Errorf("%v faster than the preceding tier", mem)
			}
		}
		prevTTFT, prevTBT = res.TTFT.Seconds(), res.TBT.Seconds()
	}
}

// Property: throughput is non-decreasing in batch size for the All-CPU
// placement (weight transfer amortizes; nothing else grows superlinearly).
func TestThroughputMonotoneInBatchProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		b1 := int(a%40) + 1
		b2 := b1 + int(b%10) + 1
		r1, err1 := Run(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Policy: placement.AllCPU{}, Batch: b1, Compress: true})
		r2, err2 := Run(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Policy: placement.AllCPU{}, Batch: b2, Compress: true})
		if err1 != nil || err2 != nil {
			return err2 != nil // larger batch may hit the cap; smaller must not
		}
		return r2.Throughput >= r1.Throughput-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: compression never hurts TTFT on bandwidth-starved tiers (the
// 3.6x transfer cut always beats the added dequant on SSD/FSDAX/CXL-FPGA).
func TestCompressionHelpsSlowTiers(t *testing.T) {
	for _, mem := range []MemoryConfig{MemSSD, MemFSDAX, MemCXLFPGA} {
		raw, err := Run(RunConfig{Model: model.OPT175B(), Memory: mem, Batch: 1})
		if err != nil {
			t.Fatal(err)
		}
		comp, err := Run(RunConfig{Model: model.OPT175B(), Memory: mem, Batch: 1, Compress: true})
		if err != nil {
			t.Fatal(err)
		}
		if comp.TTFT >= raw.TTFT {
			t.Errorf("%v: compression worsened TTFT (%v -> %v)", mem, raw.TTFT, comp.TTFT)
		}
	}
}
