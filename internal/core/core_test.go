package core

import (
	"strings"
	"testing"

	"helmsim/internal/model"
	"helmsim/internal/placement"
)

func TestMemoryConfigRoundTrip(t *testing.T) {
	for _, m := range []MemoryConfig{MemDRAM, MemNVDRAM, MemMemoryMode, MemSSD, MemFSDAX, MemCXLFPGA, MemCXLASIC} {
		got, err := ParseMemoryConfig(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v, %v", m, got, err)
		}
		devs, err := m.Devices()
		if err != nil {
			t.Errorf("%v.Devices: %v", m, err)
		}
		if devs.CPU == nil {
			t.Errorf("%v has nil CPU device", m)
		}
		wantDisk := m == MemSSD || m == MemFSDAX
		if (devs.Disk != nil) != wantDisk {
			t.Errorf("%v disk presence = %v, want %v", m, devs.Disk != nil, wantDisk)
		}
	}
	if _, err := ParseMemoryConfig("HBM"); err == nil {
		t.Errorf("unknown config accepted")
	}
	if MemoryConfig(99).String() == "" {
		t.Errorf("unknown config String empty")
	}
	if _, err := MemoryConfig(99).Devices(); err == nil {
		t.Errorf("unknown config Devices accepted")
	}
}

func TestDefaultPolicies(t *testing.T) {
	// §V-A: SSD/FSDAX use (65, 15, 20); NVDRAM/MemoryMode use (0, 80, 20).
	p := DefaultPolicy(model.OPT175B(), MemSSD, false).(placement.Baseline)
	if p.DiskPct != 65 || p.CPUPct != 15 || p.GPUPct != 20 {
		t.Errorf("SSD default = %+v", p)
	}
	p = DefaultPolicy(model.OPT175B(), MemNVDRAM, false).(placement.Baseline)
	if p.DiskPct != 0 || p.CPUPct != 80 || p.GPUPct != 20 {
		t.Errorf("NVDRAM default = %+v", p)
	}
	p = DefaultPolicy(model.OPT30B(), MemDRAM, false).(placement.Baseline)
	if p.GPUPct != 50 {
		t.Errorf("OPT-30B default = %+v", p)
	}
}

// Regression for the compression-blind ladder: the GPU rung must be sized
// with the stored (compressed) weight bytes, not the raw FP16 bytes.
//
// OPT-66B is where the bug bites: 4-bit weights fit the 50% rung
// (~17 GiB achieved vs a 31 GB budget), but the raw-sized ladder
// pessimistically fell back to (0, 80, 20). OPT-175B is deliberately NOT
// the witness — its chunky achieved allocation jumps from ~7.6 GiB
// straight to ~38 GiB at the 26% boundary, overshooting the budget even
// compressed, so raw and compressed ladders land on the same (0, 80, 20)
// and the paper's published defaults stay intact.
func TestDefaultPolicyCompressionAware(t *testing.T) {
	raw := DefaultPolicy(model.OPT66B(), MemNVDRAM, false).(placement.Baseline)
	comp := DefaultPolicy(model.OPT66B(), MemNVDRAM, true).(placement.Baseline)
	if comp.GPUPct <= raw.GPUPct {
		t.Errorf("compressed OPT-66B default GPU share = %v, want > uncompressed %v", comp.GPUPct, raw.GPUPct)
	}
	// The achieved compressed allocation must still fit the weight budget.
	mp, err := placement.PlaceModel(comp, model.OPT66B())
	if err != nil {
		t.Fatal(err)
	}
	sizer, _ := sizerFor(true)
	if got := mp.TotalOn(placement.TierGPU, sizer); got > defaultGPUWeightBudget {
		t.Errorf("compressed default claims %v of GPU weights, budget %v", got, defaultGPUWeightBudget)
	}
	// OPT-175B and OPT-30B defaults are compression-invariant (plateau
	// overshoot and first-rung fit respectively) — the paper's published
	// placements must not move.
	for _, m := range []model.Config{model.OPT175B(), model.OPT30B()} {
		r := DefaultPolicy(m, MemNVDRAM, false).(placement.Baseline)
		c := DefaultPolicy(m, MemNVDRAM, true).(placement.Baseline)
		if r != c {
			t.Errorf("%s default moved under compression: %+v vs %+v", m.Name, r, c)
		}
	}
	// Storage configurations keep the paper's fixed (65, 15, 20) split
	// regardless of compression.
	if p := DefaultPolicy(model.OPT175B(), MemFSDAX, true).(placement.Baseline); p.DiskPct != 65 {
		t.Errorf("FSDAX compressed default = %+v", p)
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Batch: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TTFT <= 0 || res.TBT <= 0 || res.Throughput <= 0 {
		t.Fatalf("bad metrics: %+v", res.Result)
	}
	if res.MaxBatch < res.Batch {
		t.Errorf("MaxBatch %d below the running batch", res.MaxBatch)
	}
	if res.GPUWeightBytes <= 0 {
		t.Errorf("no GPU weights under (0,80,20)")
	}
	if !res.Compressed {
		t.Errorf("Compressed flag lost")
	}
}

// §IV-B: uncompressed OPT-175B does not fit an all-DRAM host — the paper
// has no DRAM configuration for it.
func TestUncompressedOPT175BRejectsDRAM(t *testing.T) {
	_, err := Run(RunConfig{Model: model.OPT175B(), Memory: MemDRAM, Batch: 1})
	if err == nil {
		t.Fatal("uncompressed OPT-175B on DRAM should exceed capacity")
	}
	//lint:helmvet-ignore errcheckwrap this test asserts the human-readable message names the tier, not classification
	if !strings.Contains(err.Error(), "DRAM") {
		t.Errorf("unhelpful capacity error: %v", err)
	}
	// Compression makes it fit (§IV-B: "allows the model to fit entirely
	// on host memory, even with traditional DRAM").
	if _, err := Run(RunConfig{Model: model.OPT175B(), Memory: MemDRAM, Batch: 1, Compress: true}); err != nil {
		t.Errorf("compressed OPT-175B on DRAM should fit: %v", err)
	}
}

// §V-C: the batch cap is ~8 for the baseline uncompressed OPT-175B and far
// higher for All-CPU; batch 44 is only admissible without GPU weights.
func TestBatchCapsMatchPaper(t *testing.T) {
	baseCap, err := MaxBatchFor(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if baseCap < 6 || baseCap > 10 {
		t.Errorf("baseline uncompressed cap = %d, want ~8 (§IV-B)", baseCap)
	}
	allCap, err := MaxBatchFor(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Policy: placement.AllCPU{}, Batch: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if allCap < 44 {
		t.Errorf("All-CPU cap = %d, must admit the paper's batch 44 (§V-C)", allCap)
	}
	// Running over the cap errors with a helpful message.
	_, err = Run(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Batch: 44})
	//lint:helmvet-ignore errcheckwrap this test asserts the human-readable message explains the cap, not classification
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("over-cap run: %v", err)
	}
	// OPT-30B admits the paper's batch 32.
	cap30, err := MaxBatchFor(RunConfig{Model: model.OPT30B(), Memory: MemNVDRAM, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cap30 < 32 {
		t.Errorf("OPT-30B cap = %d, must admit batch 32 (§IV-B)", cap30)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Model: model.OPT30B(), Memory: MemDRAM, Batch: 0}); err == nil {
		t.Errorf("zero batch accepted")
	}
	if _, err := Run(RunConfig{Model: model.Config{Name: "bad"}, Memory: MemDRAM, Batch: 1}); err == nil {
		t.Errorf("invalid model accepted")
	}
	if _, err := Run(RunConfig{Model: model.OPT30B(), Memory: MemoryConfig(99), Batch: 1}); err == nil {
		t.Errorf("invalid memory config accepted")
	}
	// A disk-spilling policy on a memory-only config must fail.
	if _, err := Run(RunConfig{
		Model: model.OPT175B(), Memory: MemNVDRAM, Batch: 1,
		Policy: placement.Baseline{DiskPct: 65, CPUPct: 15, GPUPct: 20},
	}); err == nil {
		t.Errorf("disk policy on memory-only config accepted")
	}
}

// The CXL projections run the same engine with the expander as host tier
// (§V-D).
func TestCXLProjectionRuns(t *testing.T) {
	fpga, err := Run(RunConfig{Model: model.OPT175B(), Memory: MemCXLFPGA, Batch: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	asic, err := Run(RunConfig{Model: model.OPT175B(), Memory: MemCXLASIC, Batch: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Run(RunConfig{Model: model.OPT175B(), Memory: MemNVDRAM, Batch: 1, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	// Table IV ordering: CXL-FPGA << NVDRAM < CXL-ASIC in transfer speed,
	// hence the inverse in TBT.
	if !(fpga.TBT > nv.TBT && nv.TBT > asic.TBT) {
		t.Errorf("TBT ordering broken: FPGA %v, NVDRAM %v, ASIC %v", fpga.TBT, nv.TBT, asic.TBT)
	}
}
