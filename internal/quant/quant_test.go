package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"helmsim/internal/parallel"
	"helmsim/internal/units"
)

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, c := range []Config{{Bits: 3, GroupSize: 64}, {Bits: 4, GroupSize: 0}, {Bits: 0, GroupSize: 64}, {Bits: 16, GroupSize: 8}} {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

// §IV-B: 4-bit group-wise quantization reduces the model "to nearly a
// quarter" of its FP16 size.
func TestRatioNearQuarter(t *testing.T) {
	r := Default().Ratio(2)
	if math.Abs(r-0.28125) > 1e-12 {
		t.Errorf("ratio = %v, want 0.28125", r)
	}
	if r8 := (Config{Bits: 8, GroupSize: 64}).Ratio(2); math.Abs(r8-0.53125) > 1e-12 {
		t.Errorf("8-bit ratio = %v", r8)
	}
}

func TestCompressedBytes(t *testing.T) {
	c := Default()
	// 64 elements: 32 data bytes + 4 metadata bytes.
	if got := c.CompressedBytes(64); got != 36 {
		t.Errorf("CompressedBytes(64) = %d, want 36", got)
	}
	// 65 elements: 33 data bytes (rounded up) + 2 groups of metadata.
	if got := c.CompressedBytes(65); got != 33+8 {
		t.Errorf("CompressedBytes(65) = %d, want 41", got)
	}
	if got := c.CompressedBytes(0); got != 0 {
		t.Errorf("CompressedBytes(0) = %d, want 0", got)
	}
	if got := c.CompressedBytes(-5); got != 0 {
		t.Errorf("CompressedBytes(-5) = %d, want 0", got)
	}
}

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := make([]float32, 4096)
	for i := range x {
		x[i] = float32(rng.NormFloat64() * 0.02) // typical weight scale
	}
	tensor, err := Quantize(x, Default())
	if err != nil {
		t.Fatalf("Quantize: %v", err)
	}
	y := tensor.Dequantize()
	if len(y) != len(x) {
		t.Fatalf("len = %d, want %d", len(y), len(x))
	}
	for i := range x {
		g := i / Default().GroupSize
		bound := tensor.MaxGroupError(g)
		if d := math.Abs(float64(x[i] - y[i])); d > bound {
			t.Fatalf("elem %d error %.3g exceeds bound %.3g", i, d, bound)
		}
	}
	// Encoded size matches the analytic model.
	if got, want := tensor.Bytes(), Default().CompressedBytes(int64(len(x))); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
	// Overall RMS error small relative to the data scale.
	var se, ss float64
	for i := range x {
		d := float64(x[i] - y[i])
		se += d * d
		ss += float64(x[i]) * float64(x[i])
	}
	// 4-bit GWQ over 64-element Gaussian groups has ~9% relative RMS; the
	// networks tolerate it (§IV-B: "negligible loss in accuracy").
	if rel := math.Sqrt(se) / math.Sqrt(ss); rel > 0.12 {
		t.Errorf("relative RMS error %.4f too high for 4-bit GWQ", rel)
	}
}

func TestQuantizeConstantGroup(t *testing.T) {
	x := []float32{3.5, 3.5, 3.5, 3.5}
	tensor, err := Quantize(x, Config{Bits: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tensor.Dequantize() {
		// A constant group has zero scale; reconstruction is the fp16 min.
		if math.Abs(float64(v-3.5)) > 0.01 {
			t.Errorf("elem %d = %v, want 3.5", i, v)
		}
	}
}

func TestQuantizePartialGroup(t *testing.T) {
	x := []float32{1, 2, 3, 4, 5} // group size 4 -> one full + one partial
	tensor, err := Quantize(x, Config{Bits: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Len() != 5 {
		t.Errorf("Len = %d", tensor.Len())
	}
	y := tensor.Dequantize()
	for i := range x {
		if math.Abs(float64(x[i]-y[i])) > 0.15 {
			t.Errorf("elem %d: %v -> %v", i, x[i], y[i])
		}
	}
}

func TestQuantizeRejectsNonFinite(t *testing.T) {
	for _, bad := range [][]float32{
		{1, float32(math.NaN())},
		{float32(math.Inf(1)), 0},
	} {
		if _, err := Quantize(bad, Default()); err == nil {
			t.Errorf("non-finite input accepted: %v", bad)
		}
	}
	if _, err := Quantize([]float32{1}, Config{Bits: 5, GroupSize: 4}); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestQuantizeEmpty(t *testing.T) {
	tensor, err := Quantize(nil, Default())
	if err != nil {
		t.Fatalf("empty input: %v", err)
	}
	if tensor.Len() != 0 || tensor.Bytes() != 0 || len(tensor.Dequantize()) != 0 {
		t.Errorf("empty tensor not empty: len=%d bytes=%d", tensor.Len(), tensor.Bytes())
	}
}

func TestBitWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float32, 512)
	for i := range x {
		x[i] = float32(rng.Float64()*2 - 1)
	}
	var prevErr float64 = -1
	// Error shrinks as bit width grows.
	for _, bits := range []int{8, 4, 2} {
		tensor, err := Quantize(x, Config{Bits: bits, GroupSize: 64})
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		y := tensor.Dequantize()
		var se float64
		for i := range x {
			d := float64(x[i] - y[i])
			se += d * d
		}
		if prevErr >= 0 && se < prevErr {
			t.Errorf("error should grow as bits shrink: bits=%d se=%g prev=%g", bits, se, prevErr)
		}
		prevErr = se
	}
}

func TestFloat16RoundTrip(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, 65504, -65504, 6.1e-5, 1.0 / 3.0, 3.14159}
	for _, f := range cases {
		g := ToFloat16(f).Float32()
		rel := math.Abs(float64(g-f)) / math.Max(1e-10, math.Abs(float64(f)))
		if f != 0 && rel > 1e-3 {
			t.Errorf("fp16 round trip %v -> %v (rel %.2g)", f, g, rel)
		}
		if f == 0 && g != 0 {
			t.Errorf("zero round trip = %v", g)
		}
	}
}

func TestFloat16Specials(t *testing.T) {
	if v := ToFloat16(float32(math.Inf(1))).Float32(); !math.IsInf(float64(v), 1) {
		t.Errorf("+Inf -> %v", v)
	}
	if v := ToFloat16(float32(math.Inf(-1))).Float32(); !math.IsInf(float64(v), -1) {
		t.Errorf("-Inf -> %v", v)
	}
	if v := ToFloat16(float32(math.NaN())).Float32(); !math.IsNaN(float64(v)) {
		t.Errorf("NaN -> %v", v)
	}
	// Overflow clamps to infinity.
	if v := ToFloat16(1e10).Float32(); !math.IsInf(float64(v), 1) {
		t.Errorf("overflow -> %v", v)
	}
	// Tiny values underflow to (sub)normal or zero without panicking.
	if v := ToFloat16(1e-30).Float32(); v != 0 {
		t.Errorf("underflow -> %v, want 0", v)
	}
	// Subnormal half survives.
	sub := float32(3.0e-6)
	got := ToFloat16(sub).Float32()
	if math.Abs(float64(got-sub))/float64(sub) > 0.05 {
		t.Errorf("subnormal %v -> %v", sub, got)
	}
	// Negative zero keeps its sign bit.
	nz := ToFloat16(float32(math.Copysign(0, -1)))
	if nz&0x8000 == 0 {
		t.Errorf("negative zero lost sign")
	}
}

// Property: fp16 round trip has bounded relative error over the normal
// range.
func TestFloat16RoundTripProperty(t *testing.T) {
	f := func(u uint32) bool {
		v := math.Float32frombits(u)
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		if a := math.Abs(float64(v)); a > 65000 || a < 1e-4 {
			return true // outside the comfortable fp16 normal range
		}
		g := ToFloat16(v).Float32()
		return math.Abs(float64(g-v))/math.Abs(float64(v)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: every reconstructed element lies within its group's [min, max]
// envelope (slightly widened for fp16 metadata rounding).
func TestDequantWithinEnvelopeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		tensor, err := Quantize(x, Default())
		if err != nil {
			return false
		}
		y := tensor.Dequantize()
		gs := Default().GroupSize
		for g := 0; g*gs < n; g++ {
			lo := g * gs
			hi := lo + gs
			if hi > n {
				hi = n
			}
			gmin, gmax := x[lo], x[lo]
			for _, v := range x[lo:hi] {
				if v < gmin {
					gmin = v
				}
				if v > gmax {
					gmax = v
				}
			}
			// Widen the envelope for the quantization step and the fp16
			// rounding of the group min/scale (relative to magnitude).
			mag := math.Max(math.Abs(float64(gmin)), math.Abs(float64(gmax)))
			pad := float32(1e-5 + float64(gmax-gmin)*0.02 + mag*2e-3)
			for i := lo; i < hi; i++ {
				if y[i] < gmin-pad || y[i] > gmax+pad {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: compressed size is monotone in element count and matches the
// constructed tensor exactly.
func TestCompressedBytesConsistencyProperty(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw % 2000)
		x := make([]float32, n)
		tensor, err := Quantize(x, Default())
		if err != nil {
			return false
		}
		want := Default().CompressedBytes(int64(n))
		if tensor.Bytes() != want {
			return false
		}
		return Default().CompressedBytes(int64(n)+1) >= want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressedBytesForOPT175B(t *testing.T) {
	// Whole-model compressed footprint lands near 0.28125 x 350 GB.
	c := Default()
	elems := int64(175e9)
	got := c.CompressedBytes(elems)
	want := float64(elems) * 2 * c.Ratio(2)
	if math.Abs(float64(got)-want)/want > 1e-6 {
		t.Errorf("compressed 175B = %v, want ~%.0f", got, want)
	}
	if got >= units.Bytes(elems)*2 {
		t.Errorf("compression did not shrink")
	}
}

// Dequantize must be bit-identical at every worker count: each group owns
// a disjoint output range, so tiling cannot change a single element.
func TestDequantizeParallelInvariance(t *testing.T) {
	x := make([]float32, 1<<16+37) // odd tail group
	for i := range x {
		x[i] = float32(math.Sin(float64(i))) * float32(i%113)
	}
	for _, cfg := range []Config{{Bits: 4, GroupSize: 64}, {Bits: 2, GroupSize: 3}, {Bits: 8, GroupSize: 1000}} {
		tensor, err := Quantize(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := parallel.Set(1)
		want := tensor.Dequantize()
		for _, par := range []int{2, 8} {
			parallel.Set(par)
			got := tensor.Dequantize()
			for i := range want {
				if got[i] != want[i] {
					parallel.Set(prev)
					t.Fatalf("cfg %+v par %d: elem %d = %v, want %v", cfg, par, i, got[i], want[i])
				}
			}
		}
		parallel.Set(prev)
	}
}
