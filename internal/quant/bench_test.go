package quant

import (
	"testing"

	"helmsim/internal/parallel"
)

// Group dequantization is the serving path's recurring compute (every
// weight use pays it, §IV-B); this pins its serial-vs-parallel cost.
func BenchmarkDequantize(b *testing.B) {
	x := make([]float32, 1<<21)
	for i := range x {
		x[i] = float32(i%509)/509 - 0.5
	}
	t, err := Quantize(x, Default())
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "p1"
		if par != 1 {
			name = "pN"
		}
		b.Run(name, func(b *testing.B) {
			prev := parallel.Set(par)
			defer parallel.Set(prev)
			b.SetBytes(int64(len(x)) * 4)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := t.Dequantize(); len(got) != len(x) {
					b.Fatal("bad length")
				}
			}
		})
	}
}
