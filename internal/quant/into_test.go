package quant

import (
	"math/rand"
	"testing"
)

// TestDequantizeIntoMatchesDequantize sweeps bit widths, group sizes,
// and element counts that exercise every group-boundary shape: exact
// multiples, partial tails, single-element tensors, and counts smaller
// than one group.
func TestDequantizeIntoMatchesDequantize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, bits := range []int{2, 4, 8} {
		for _, gs := range []int{1, 3, 64, 100} {
			for _, n := range []int{0, 1, gs - 1, gs, gs + 1, 3*gs + 2} {
				if n < 0 {
					continue
				}
				x := make([]float32, n)
				for i := range x {
					x[i] = float32(rng.NormFloat64())
				}
				tt, err := Quantize(x, Config{Bits: bits, GroupSize: gs})
				if err != nil {
					t.Fatalf("bits=%d gs=%d n=%d: %v", bits, gs, n, err)
				}
				want := tt.Dequantize()

				// Undersized dst: must allocate, not clobber or truncate.
				small := make([]float32, 0, n/2)
				got := tt.DequantizeInto(small)
				assertIdentical(t, "undersized dst", want, got)

				// Oversized dirty dst: must reuse the buffer in place.
				big := make([]float32, n+5)
				for i := range big {
					big[i] = 42
				}
				got = tt.DequantizeInto(big)
				assertIdentical(t, "oversized dst", want, got)
				if n > 0 && &got[0] != &big[0] {
					t.Fatalf("bits=%d gs=%d n=%d: DequantizeInto did not reuse a large-enough dst", bits, gs, n)
				}
			}
		}
	}
}

func TestUnmarshalBinaryViewMatchesCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := make([]float32, 1000)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	orig, err := Quantize(x, Default())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var copied, viewed Tensor
	if err := copied.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if err := viewed.UnmarshalBinaryView(blob); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "view vs copy", copied.Dequantize(), viewed.Dequantize())

	// The view must alias the blob's packed region, not copy it.
	if len(viewed.packed) > 0 && &viewed.packed[0] != &blob[20] {
		t.Fatal("UnmarshalBinaryView copied the packed bytes")
	}
	// Reusing the same tensor for another view must recycle the fp16
	// metadata storage instead of reallocating it.
	mins := &viewed.mins[0]
	if err := viewed.UnmarshalBinaryView(blob); err != nil {
		t.Fatal(err)
	}
	if &viewed.mins[0] != mins {
		t.Fatal("UnmarshalBinaryView reallocated metadata despite sufficient capacity")
	}

	// Corrupting the blob after a view decode must show through (it is a
	// view), proving no hidden copy; a fresh copy-decode must not.
	before := viewed.Dequantize()[0]
	blob[20] ^= 0xff
	after := viewed.Dequantize()[0]
	if viewed.cfg.Bits != 0 && before == after && x[0] != 0 {
		t.Log("first element insensitive to packed bit flip (possible but unlikely); skipping aliasing assertion")
	}
	assertIdentical(t, "copy unaffected by later blob mutation", copied.Dequantize(), orig.Dequantize())
}

// FuzzDequantizeInto cross-checks DequantizeInto against Dequantize on
// arbitrary marshaled tensors, including hostile ones from the fuzzer —
// whatever UnmarshalBinary accepts must decode identically both ways.
func FuzzDequantizeInto(f *testing.F) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(i%17) - 8
		}
		tt, err := Quantize(x, Config{Bits: 4, GroupSize: 64})
		if err != nil {
			f.Fatal(err)
		}
		blob, err := tt.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob, 10)
	}
	f.Fuzz(func(t *testing.T, blob []byte, dstCap int) {
		var tt Tensor
		if err := tt.UnmarshalBinary(blob); err != nil {
			t.Skip()
		}
		want := tt.Dequantize()
		if dstCap < 0 {
			dstCap = 0
		}
		if dstCap > 1<<20 {
			dstCap = 1 << 20
		}
		dst := make([]float32, dstCap)
		for i := range dst {
			dst[i] = -1e30
		}
		got := tt.DequantizeInto(dst)
		if len(got) != len(want) {
			t.Fatalf("DequantizeInto len %d, Dequantize len %d", len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("element %d: %v vs %v", i, got[i], want[i])
			}
		}
	})
}

func assertIdentical(t *testing.T, name string, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: len %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-identical)", name, i, got[i], want[i])
		}
	}
}
