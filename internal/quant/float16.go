package quant

import "math"

// Float16 is an IEEE 754 binary16 value in its raw bit representation.
// FlexGen stores group-wise quantization metadata (per-group scale and
// minimum) in half precision; implementing the format here keeps the
// simulator's compressed-size accounting byte-exact with the real system.
type Float16 uint16

// ToFloat16 converts a float32 to binary16 with round-to-nearest-even,
// clamping overflow to infinity.
func ToFloat16(f float32) Float16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			return Float16(sign | 0x7e00) // NaN
		}
		return Float16(sign | 0x7c00) // Inf
	case exp == 0 && mant == 0:
		return Float16(sign) // signed zero
	}

	// Re-bias the exponent from 127 to 15.
	e := exp - 127 + 15
	switch {
	case e >= 0x1f:
		return Float16(sign | 0x7c00) // overflow -> Inf
	case e <= 0:
		// Subnormal half: shift the mantissa (with implicit leading one)
		// right and round to nearest even.
		if e < -10 {
			return Float16(sign) // underflow -> zero
		}
		m := mant | 0x800000
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		v := m >> shift
		rem := m & ((1 << shift) - 1)
		if rem > half || (rem == half && v&1 == 1) {
			v++
		}
		return Float16(sign | uint16(v))
	}

	// Normal half: keep the top 10 mantissa bits, round to nearest even.
	v := uint32(e)<<10 | mant>>13
	rem := mant & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
		v++ // may carry into the exponent, which is correct behaviour
	}
	return Float16(sign | uint16(v))
}

// Float32 converts the half back to float32.
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h) & 0x3ff

	switch {
	case exp == 0x1f: // Inf or NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7fc00000)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal half: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
}
