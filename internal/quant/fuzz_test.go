package quant

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalTensor hardens the wire-format decoder: arbitrary input
// must either round-trip into a decodable tensor or be rejected, never
// panic or read out of bounds.
func FuzzUnmarshalTensor(f *testing.F) {
	// Seeds: a valid blob, a truncated one, a corrupted magic.
	valid, err := func() ([]byte, error) {
		t, err := Quantize([]float32{1, 2, 3, 4, 5, 6, 7, 8}, Default())
		if err != nil {
			return nil, err
		}
		return t.MarshalBinary()
	}()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:10])
	corrupted := bytes.Clone(valid)
	corrupted[0] ^= 0xff
	f.Add(corrupted)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var tensor Tensor
		if err := tensor.UnmarshalBinary(data); err != nil {
			return // rejection is fine
		}
		// Accepted blobs must decode consistently and re-marshal to an
		// equivalent tensor.
		out := tensor.Dequantize()
		if len(out) != tensor.Len() {
			t.Fatalf("decode length %d != %d", len(out), tensor.Len())
		}
		blob, err := tensor.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var again Tensor
		if err := again.UnmarshalBinary(blob); err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		back := again.Dequantize()
		for i := range out {
			if out[i] != back[i] {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}
