// Package quant implements the group-wise weight quantization FlexGen uses
// to compress model weights from FP16 to 4 bits (Shen et al. [53], §IV-B):
// tensors are split into fixed-size groups, each group stores its minimum
// and scale in half precision, and elements are encoded as unsigned
// fixed-point offsets from the group minimum.
//
// The package provides both a real encoder/decoder (used by the tests and
// examples to demonstrate the error bounds that make 4-bit serving viable)
// and the exact compressed-size accounting the placement and scheduling
// code uses (the ~3.56x size reduction of §IV-B: "reducing the model size
// to nearly a quarter").
package quant

import (
	"fmt"
	"math"

	"helmsim/internal/parallel"
	"helmsim/internal/units"
)

// Config selects the quantization parameters.
type Config struct {
	// Bits is the per-element width; 2, 4, and 8 are supported.
	Bits int
	// GroupSize is the number of elements sharing one (min, scale) pair.
	GroupSize int
}

// Default returns FlexGen's configuration: 4 bits, group size 64.
func Default() Config { return Config{Bits: 4, GroupSize: 64} }

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Bits {
	case 2, 4, 8:
	default:
		return fmt.Errorf("quant: unsupported bit width %d (want 2, 4, or 8)", c.Bits)
	}
	if c.GroupSize <= 0 {
		return fmt.Errorf("quant: non-positive group size %d", c.GroupSize)
	}
	return nil
}

// levels is the number of representable values per element.
func (c Config) levels() int { return 1 << c.Bits }

// metaBytesPerGroup is the per-group metadata cost: one FP16 minimum and
// one FP16 scale.
const metaBytesPerGroup = 4

// CompressedBytes is the exact encoded size of a tensor with the given
// element count: packed element data plus per-group metadata.
func (c Config) CompressedBytes(elems int64) units.Bytes {
	if elems <= 0 {
		return 0
	}
	groups := (elems + int64(c.GroupSize) - 1) / int64(c.GroupSize)
	dataBits := elems * int64(c.Bits)
	dataBytes := (dataBits + 7) / 8
	return units.Bytes(dataBytes + groups*metaBytesPerGroup)
}

// Ratio is the asymptotic compressed/uncompressed size ratio against a
// dtype of the given byte width. For the default config against FP16 this
// is 0.28125 — "nearly a quarter" (§IV-B).
func (c Config) Ratio(dtypeBytes int) float64 {
	perElem := float64(c.Bits)/8 + metaBytesPerGroup/float64(c.GroupSize)
	return perElem / float64(dtypeBytes)
}

// Tensor is a quantized tensor.
type Tensor struct {
	cfg    Config
	n      int
	packed []byte
	mins   []Float16
	scales []Float16
}

// Quantize encodes x under cfg.
func Quantize(x []float32, cfg Config) (*Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return nil, fmt.Errorf("quant: non-finite element at index %d", i)
		}
	}
	n := len(x)
	groups := (n + cfg.GroupSize - 1) / cfg.GroupSize
	t := &Tensor{
		cfg:    cfg,
		n:      n,
		packed: make([]byte, (n*cfg.Bits+7)/8),
		mins:   make([]Float16, groups),
		scales: make([]Float16, groups),
	}
	maxQ := float32(cfg.levels() - 1)
	for g := 0; g < groups; g++ {
		lo := g * cfg.GroupSize
		hi := lo + cfg.GroupSize
		if hi > n {
			hi = n
		}
		gmin, gmax := x[lo], x[lo]
		for _, v := range x[lo+1 : hi] {
			if v < gmin {
				gmin = v
			}
			if v > gmax {
				gmax = v
			}
		}
		// Store metadata in half precision, then quantize against the
		// *stored* (rounded) values so decode is self-consistent.
		t.mins[g] = ToFloat16(gmin)
		scale := (gmax - gmin) / maxQ
		t.scales[g] = ToFloat16(scale)
		smin := t.mins[g].Float32()
		sscale := t.scales[g].Float32()
		for i := lo; i < hi; i++ {
			var q uint32
			if sscale > 0 {
				q = uint32(math.Round(float64((x[i] - smin) / sscale)))
				if q > uint32(maxQ) {
					q = uint32(maxQ)
				}
			}
			t.setQ(i, q)
		}
	}
	return t, nil
}

// setQ stores the quantized value of element i into the packed buffer.
func (t *Tensor) setQ(i int, q uint32) {
	bits := t.cfg.Bits
	bitPos := i * bits
	byteIdx := bitPos / 8
	shift := uint(bitPos % 8)
	mask := byte(t.cfg.levels()-1) << shift
	t.packed[byteIdx] = (t.packed[byteIdx] &^ mask) | byte(q)<<shift&mask
}

// getQ loads the quantized value of element i.
func (t *Tensor) getQ(i int) uint32 {
	bits := t.cfg.Bits
	bitPos := i * bits
	byteIdx := bitPos / 8
	shift := uint(bitPos % 8)
	return uint32(t.packed[byteIdx]>>shift) & uint32(t.cfg.levels()-1)
}

// Len is the element count.
func (t *Tensor) Len() int { return t.n }

// Bytes is the encoded size, identical to Config.CompressedBytes.
func (t *Tensor) Bytes() units.Bytes {
	return units.Bytes(len(t.packed) + len(t.mins)*2 + len(t.scales)*2)
}

// Dequantize decodes the tensor back to float32.
//
// Groups are independent (each owns a disjoint output range and only
// reads the packed buffer), so the decode tiles over the shared worker
// pool (tensor.SetParallelism) — per-use decompression is the serving
// path's recurring compute, and it scales with cores. Output is
// bit-identical at any worker count.
func (t *Tensor) Dequantize() []float32 {
	return t.DequantizeInto(nil)
}

// DequantizeInto is Dequantize writing into dst when its capacity
// suffices, allocating a fresh slice otherwise; it returns the filled
// slice (length t.Len()). The decode loop and its parallel tiling are
// identical to Dequantize, so the output bits match exactly. dst may be
// nil. The caller owns the returned slice; it aliases dst when dst was
// large enough.
func (t *Tensor) DequantizeInto(dst []float32) []float32 {
	var out []float32
	if cap(dst) >= t.n {
		out = dst[:t.n]
	} else {
		out = make([]float32, t.n)
	}
	// ~16Ki elements per tile at the default group size keeps tiny
	// tensors (biases, norms) on the calling goroutine. The serial path
	// skips closure construction: building the func literal for the pool
	// would heap-allocate on every decode, and recycled-buffer decodes
	// sit on the engine's allocation-free hot path.
	grain := 1 + (1<<14)/t.cfg.GroupSize
	if len(t.mins) <= grain || parallel.N() == 1 {
		t.dequantGroups(out, 0, len(t.mins))
		return out
	}
	parallel.For(len(t.mins), grain, func(glo, ghi int) { t.dequantGroups(out, glo, ghi) })
	return out
}

// dequantGroups decodes groups [glo, ghi) into out — each group owns a
// disjoint output range, decode order within a group identical to the
// serial loop.
func (t *Tensor) dequantGroups(out []float32, glo, ghi int) {
	for g := glo; g < ghi; g++ {
		lo := g * t.cfg.GroupSize
		hi := lo + t.cfg.GroupSize
		if hi > t.n {
			hi = t.n
		}
		gmin := t.mins[g].Float32()
		scale := t.scales[g].Float32()
		for i := lo; i < hi; i++ {
			out[i] = gmin + float32(t.getQ(i))*scale
		}
	}
}

// MaxGroupError bounds the absolute reconstruction error of one group:
// half a quantization step plus the half-precision rounding of the
// metadata. Useful for asserting correctness properties.
func (t *Tensor) MaxGroupError(g int) float64 {
	scale := float64(t.scales[g].Float32())
	// Half a step from rounding, plus ~2 ulps of fp16 metadata error
	// amplified across the group range.
	return scale/2 + scale*float64(t.cfg.levels())*1e-3 + 1e-6
}
