package quant

import (
	"encoding/binary"
	"fmt"
)

// marshalMagic guards the Tensor wire format.
const marshalMagic = uint32(0x47575134) // "GWQ4"

// MarshalBinary serializes the tensor: header (magic, bits, group size,
// element count), packed data, and the fp16 metadata arrays. The format is
// little-endian and versioned by the magic.
func (t *Tensor) MarshalBinary() ([]byte, error) {
	size := 4 + 4 + 4 + 8 + len(t.packed) + 2*len(t.mins) + 2*len(t.scales)
	buf := make([]byte, 0, size)
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, marshalMagic)
	buf = le.AppendUint32(buf, uint32(t.cfg.Bits))
	buf = le.AppendUint32(buf, uint32(t.cfg.GroupSize))
	buf = le.AppendUint64(buf, uint64(t.n))
	buf = append(buf, t.packed...)
	for _, m := range t.mins {
		buf = le.AppendUint16(buf, uint16(m))
	}
	for _, s := range t.scales {
		buf = le.AppendUint16(buf, uint16(s))
	}
	return buf, nil
}

// UnmarshalBinary restores a tensor serialized by MarshalBinary. The
// tensor copies what it needs out of data, which may be reused freely
// afterwards.
func (t *Tensor) UnmarshalBinary(data []byte) error {
	return t.unmarshal(data, true)
}

// UnmarshalBinaryView is UnmarshalBinary without copying the packed
// element bytes: the tensor aliases data's packed region directly, so
// data must stay alive, unmodified, and mapped (for mmap-backed
// checkpoints, pinned) for as long as the tensor is used. It exists for
// the read-decode-discard pattern — unmarshal a view, DequantizeInto a
// reusable buffer, drop the tensor — where the packed copy would be the
// only per-read allocation left. The fp16 metadata is still decoded
// into t's own storage, reusing its existing capacity when possible.
func (t *Tensor) UnmarshalBinaryView(data []byte) error {
	return t.unmarshal(data, false)
}

func (t *Tensor) unmarshal(data []byte, copyPacked bool) error {
	le := binary.LittleEndian
	if len(data) < 20 {
		return fmt.Errorf("quant: truncated tensor header (%d bytes)", len(data))
	}
	if got := le.Uint32(data[0:]); got != marshalMagic {
		return fmt.Errorf("quant: bad magic %#x", got)
	}
	cfg := Config{Bits: int(le.Uint32(data[4:])), GroupSize: int(le.Uint32(data[8:]))}
	if err := cfg.Validate(); err != nil {
		return err
	}
	n := int(le.Uint64(data[12:]))
	if n < 0 {
		return fmt.Errorf("quant: negative element count")
	}
	packedLen := (n*cfg.Bits + 7) / 8
	groups := 0
	if n > 0 {
		groups = (n + cfg.GroupSize - 1) / cfg.GroupSize
	}
	want := 20 + packedLen + 4*groups
	if len(data) != want {
		return fmt.Errorf("quant: tensor payload is %d bytes, want %d", len(data), want)
	}
	t.cfg = cfg
	t.n = n
	if copyPacked {
		t.packed = append([]byte(nil), data[20:20+packedLen]...)
	} else {
		t.packed = data[20 : 20+packedLen : 20+packedLen]
	}
	off := 20 + packedLen
	if cap(t.mins) >= groups {
		t.mins = t.mins[:groups]
	} else {
		t.mins = make([]Float16, groups)
	}
	for i := range t.mins {
		t.mins[i] = Float16(le.Uint16(data[off+2*i:]))
		if !finite16(t.mins[i]) {
			return fmt.Errorf("quant: non-finite group minimum at group %d", i)
		}
	}
	off += 2 * groups
	if cap(t.scales) >= groups {
		t.scales = t.scales[:groups]
	} else {
		t.scales = make([]Float16, groups)
	}
	for i := range t.scales {
		t.scales[i] = Float16(le.Uint16(data[off+2*i:]))
		if !finite16(t.scales[i]) {
			return fmt.Errorf("quant: non-finite group scale at group %d", i)
		}
	}
	return nil
}

// finite16 reports whether the half is neither Inf nor NaN (exponent field
// not all ones).
func finite16(h Float16) bool { return h&0x7c00 != 0x7c00 }
