#!/bin/sh
# Blocking govulncheck with a documented escape hatch. Advisory IDs
# listed in .govulncheck-ignore (one GO-YYYY-NNNN per line, # starts a
# comment) are tolerated — the hatch exists for stdlib advisories that
# have no released toolchain fix yet, where the only alternative would
# be muting the scanner entirely. Any other finding fails.
#
# `make vulncheck` and the CI lint job both run this script verbatim,
# so local and CI enforcement cannot drift. Requires network access to
# fetch the scanner and the vulnerability database.
set -u

ignore_file="$(dirname "$0")/../.govulncheck-ignore"

out="$(go run golang.org/x/vuln/cmd/govulncheck@latest ./... 2>&1)"
status=$?
printf '%s\n' "$out"
[ "$status" -eq 0 ] && exit 0

ids="$(printf '%s\n' "$out" | grep -oE 'GO-[0-9]{4}-[0-9]+' | sort -u)"
if [ -z "$ids" ]; then
    echo "vulncheck.sh: govulncheck failed without reporting advisories (tool or network error)" >&2
    exit "$status"
fi

unignored=""
for id in $ids; do
    if ! sed 's/#.*//; s/[[:space:]]//g' "$ignore_file" 2>/dev/null | grep -qx "$id"; then
        unignored="$unignored $id"
    fi
done

if [ -n "$unignored" ]; then
    echo "vulncheck.sh: blocking advisories:$unignored" >&2
    echo "vulncheck.sh: upgrade the toolchain/dependency; if the advisory is unfixable (no released patch), add its ID to .govulncheck-ignore with a comment saying why and when to revisit" >&2
    exit 1
fi

echo "vulncheck.sh: every reported advisory is listed in .govulncheck-ignore; passing" >&2
exit 0
