package helmsim_test

import (
	"math"
	"testing"

	"helmsim"
)

func TestPublicTune(t *testing.T) {
	res, err := helmsim.Tune(helmsim.TuneRequest{
		Model:     helmsim.OPT175B(),
		Memory:    helmsim.MemNVDRAM,
		Compress:  true,
		Objective: helmsim.MinTBT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.TBT <= 0 {
		t.Fatalf("no tuning winner: %+v", res)
	}
}

func TestPublicBalanceAndEnergy(t *testing.T) {
	rc := helmsim.Config{Model: helmsim.OPT175B(), Memory: helmsim.MemNVDRAM, Batch: 1, Compress: true}
	pol, err := helmsim.BalancePlacement(rc, 20e9)
	if err != nil {
		t.Fatal(err)
	}
	rc.Policy = pol
	run, err := helmsim.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := helmsim.EstimateEnergy(rc, run)
	if err != nil {
		t.Fatal(err)
	}
	if b.PerTokenJ <= 0 || math.IsNaN(b.PerTokenJ) {
		t.Errorf("energy breakdown broken: %+v", b)
	}
}

func TestPublicQueueAndProtocol(t *testing.T) {
	m, err := helmsim.SimulateQueue(helmsim.QueueConfig{
		Run: helmsim.Config{
			Model: helmsim.OPT30B(), Memory: helmsim.MemNVDRAM, Batch: 8,
		},
		ArrivalRate: 2,
		NumPrompts:  40,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Waves == 0 || m.PromptsPerSec <= 0 {
		t.Fatalf("queue metrics broken: %+v", m)
	}
	p, err := helmsim.PaperProtocol(helmsim.Config{
		Model: helmsim.OPT30B(), Memory: helmsim.MemDRAM, Batch: 4,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Runs != 2 {
		t.Errorf("protocol runs = %d", p.Runs)
	}
}
