package helmsim

import (
	"helmsim/internal/autotune"
	"helmsim/internal/energy"
	"helmsim/internal/gateway"
	"helmsim/internal/infer"
	"helmsim/internal/serve"
	"helmsim/internal/server"
	"helmsim/internal/units"
)

// This file re-exports the extension surfaces built on top of the paper's
// reproduction: the QoS autotuner (§VII future work), energy accounting
// (the abstract's DRAM-substitution argument), and online serving.

// Duration is the simulator's time unit (seconds as float64).
type Duration = units.Duration

// Bytes is the simulator's size unit.
type Bytes = units.Bytes

// Tuning objectives.
const (
	// MinTBT minimizes time between tokens.
	MinTBT = autotune.MinTBT
	// MaxThroughput maximizes tokens per second.
	MaxThroughput = autotune.MaxThroughput
	// MaxThroughputUnderTBT maximizes throughput under a TBT bound.
	MaxThroughputUnderTBT = autotune.MaxThroughputUnderTBT
)

// TuneRequest describes a QoS tuning problem.
type TuneRequest = autotune.Request

// TuneResult is a tuning outcome with the trial history.
type TuneResult = autotune.Result

// Tune searches placement policies and batch sizes for a QoS objective —
// the paper's §VII future-work direction made executable.
var Tune = autotune.Tune

// BalancePlacement builds a compute-aware placement for the configuration
// with the given GPU byte budget, generalizing HeLM's balancing idea to
// any layer structure.
var BalancePlacement = autotune.Balance

// EnergyBreakdown decomposes a run's energy cost.
type EnergyBreakdown = energy.Breakdown

// EstimateEnergy computes the energy breakdown of a completed run,
// quantifying the abstract's claim that careful placement lets
// high-capacity low-standby-power memory substitute for DRAM.
var EstimateEnergy = energy.Estimate

// QueueConfig describes an online-serving simulation (Poisson arrivals,
// wave batching).
type QueueConfig = serve.QueueConfig

// QueueMetrics aggregates an online-serving simulation.
type QueueMetrics = serve.QueueMetrics

// SimulateQueue runs the online-serving simulation on the engine's cost
// model.
var SimulateQueue = serve.SimulateQueue

// PaperProtocol serves the §III-B workload (128-token prompts repeated 10
// times, metrics averaged with the first run discarded).
var PaperProtocol = serve.PaperProtocol

// Conserved is the admission-ledger invariant shared by the queue
// simulator and the live daemon: every arrival lands in exactly one of
// the admitted/shed buckets.
var Conserved = serve.Conserved

// SwappableStore atomically hot-swaps a weight store under in-flight
// readers; retired generations close after their last reader.
type SwappableStore = infer.SwappableStore

// NewSwappable wraps a weight store (and its closer) for hot reload.
var NewSwappable = infer.NewSwappable

// ServerConfig configures the live serving daemon (see cmd/helmd).
type ServerConfig = server.Config

// ServerStats is the daemon's counter snapshot (the /statz body).
type ServerStats = server.Stats

// BreakerConfig tunes the daemon's storage circuit breaker.
type BreakerConfig = server.BreakerConfig

// NewServer starts the live serving daemon: admission control, a
// worker pool of engines over one hot-swappable store chain, a storage
// circuit breaker, and graceful drain.
var NewServer = server.New

// GatewayConfig configures the fleet gateway (see cmd/helmgw).
type GatewayConfig = gateway.Config

// GatewayBackendConfig describes one replica a gateway fronts.
type GatewayBackendConfig = gateway.BackendConfig

// FleetStats is the gateway's ledger snapshot (the /fleetz body).
type FleetStats = gateway.FleetStats

// NewGateway starts the fleet gateway: pluggable routing across N
// replicas, health probing, per-backend circuit breakers, bounded
// failover retries onto different healthy replicas, and administrative
// drain-out of replicas.
var NewGateway = gateway.New

// FleetConserved is the fleet-level admission invariant: every gateway
// arrival is finalized by exactly one replica or lands in exactly one
// gateway shed bucket.
var FleetConserved = serve.FleetConserved
