// Throughput serving with All-CPU (§V-C): push every weight to host memory,
// hand the whole GPU to the KV cache, and sweep the batch size up to the
// budget's cap. The example prints the capacity analysis (why the baseline
// stops at a small batch while All-CPU reaches 44+) and the throughput
// curve.
//
//	go run ./examples/throughput_allcpu
package main

import (
	"fmt"
	"log"

	"helmsim"
	"helmsim/internal/report"
)

func main() {
	base := helmsim.Config{Model: helmsim.OPT175B(), Memory: helmsim.MemNVDRAM, Batch: 1, Compress: true}

	allCPU := base
	allCPU.Policy = helmsim.AllCPUPolicy()

	baseCapUncompressed := base
	baseCapUncompressed.Compress = false
	capBase, err := helmsim.MaxBatch(baseCapUncompressed)
	if err != nil {
		log.Fatal(err)
	}
	capAll, err := helmsim.MaxBatch(allCPU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU batch caps on the 40 GB A100 (OPT-175B):\n")
	fmt.Printf("  baseline placement (uncompressed, ~29 GB weights on GPU): %d\n", capBase)
	fmt.Printf("  All-CPU placement  (0 GB weights on GPU):                 %d\n", capAll)
	fmt.Println()

	// Throughput scaling: baseline at its cap vs All-CPU sweeping upward.
	ref, err := helmsim.Run(func() helmsim.Config { c := base; c.Batch = 8; return c }())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline batch 8: %.3f tok/s (reference)\n\n", ref.Throughput)

	var maxThr float64
	type row struct {
		batch int
		thr   float64
	}
	var rows []row
	for _, b := range []int{1, 2, 4, 8, 16, 32, 44} {
		cfg := allCPU
		cfg.Batch = b
		res, err := helmsim.Run(cfg)
		if err != nil {
			log.Fatalf("batch %d: %v", b, err)
		}
		rows = append(rows, row{b, res.Throughput})
		if res.Throughput > maxThr {
			maxThr = res.Throughput
		}
	}
	fmt.Println("All-CPU throughput vs batch size:")
	for _, r := range rows {
		fmt.Println(report.Bar(fmt.Sprintf("  batch %d", r.batch), r.thr, maxThr, 40,
			fmt.Sprintf("%6.3f tok/s (%.2fx baseline b8)", r.thr, r.thr/ref.Throughput)))
	}
	fmt.Println()
	fmt.Println("Weight transfer time is the same at any batch — decode compute stays")
	fmt.Println("flat (dequantization-dominated) — so every extra prompt rides along for")
	fmt.Println("free until the KV cache fills the GPU: a ~5x throughput win (§V-C).")
}
