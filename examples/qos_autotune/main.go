// QoS autotuning (§VII future work): "weight placement algorithms that can
// automatically make latency/throughput tradeoffs based on desired quality
// of service requirements." This example serves OPT-175B on Optane under
// three different service-level objectives and lets the tuner pick the
// placement and batch size for each.
//
//	go run ./examples/qos_autotune
package main

import (
	"fmt"
	"log"

	"helmsim"
	"helmsim/internal/autotune"
	"helmsim/internal/units"
)

func main() {
	base := autotune.Request{
		Model:    helmsim.OPT175B(),
		Memory:   helmsim.MemNVDRAM,
		Compress: true,
	}

	scenarios := []struct {
		label string
		req   autotune.Request
	}{
		{"interactive chat (minimize TBT)", func() autotune.Request {
			r := base
			r.Objective = autotune.MinTBT
			return r
		}()},
		{"batch analytics (maximize throughput)", func() autotune.Request {
			r := base
			r.Objective = autotune.MaxThroughput
			return r
		}()},
		{"SLA serving (max throughput, TBT <= 6.3s)", func() autotune.Request {
			r := base
			r.Objective = autotune.MaxThroughputUnderTBT
			r.TBTBound = units.Duration(6.3)
			return r
		}()},
	}

	for _, s := range scenarios {
		res, err := autotune.Tune(s.req)
		if err != nil {
			log.Fatalf("%s: %v", s.label, err)
		}
		fmt.Printf("%s\n", s.label)
		fmt.Printf("  -> %s at batch %d: TTFT %.3fs, TBT %.3fs, %.3f tok/s (%d trials)\n\n",
			res.Best.PolicyName, res.Best.Batch,
			res.Best.TTFT.Seconds(), res.Best.TBT.Seconds(),
			res.Best.Throughput, len(res.Trials))
	}

	fmt.Println("The tuner rediscovers the paper's §V conclusions on its own: a")
	fmt.Println("HeLM-like compute-balanced placement for latency, All-CPU with the")
	fmt.Println("largest batch for throughput, and a mid-size batch when an SLA caps")
	fmt.Println("the time between tokens.")
}
