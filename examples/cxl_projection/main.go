// CXL what-if analysis (§V-D): sweep the host-tier bandwidth across the
// published CXL device spectrum — from the FPGA-controller expander
// (5.12 GB/s) past Optane to the ASIC expander (28 GB/s) — and show how
// the baseline, HeLM and All-CPU placements respond. This is the decision
// chart a deployment would use to pick a placement policy for a given
// memory device.
//
//	go run ./examples/cxl_projection
package main

import (
	"fmt"
	"log"

	"helmsim"
	"helmsim/internal/cxl"
	"helmsim/internal/memdev"
	"helmsim/internal/sched"
	"helmsim/internal/units"

	// The sweep drives the scheduler directly with synthetic expanders.
	"helmsim/internal/gpu"
	"helmsim/internal/placement"
	"helmsim/internal/quant"
	"helmsim/internal/xfer"
)

func main() {
	fmt.Println("Table III devices:")
	for _, c := range cxl.Configs() {
		fmt.Printf("  %-9s %-13s %8s   (%s)\n", c.Name, c.MemTech, c.BW.String(), c.Source)
	}
	fmt.Println()

	// Named-device projections through the engine.
	fmt.Println("OPT-175B(c), batch 1 — TBT per device and policy:")
	for _, mem := range []helmsim.MemoryConfig{helmsim.MemCXLFPGA, helmsim.MemNVDRAM, helmsim.MemCXLASIC} {
		base, err := helmsim.Run(helmsim.Config{Model: helmsim.OPT175B(), Memory: mem, Batch: 1, Compress: true})
		if err != nil {
			log.Fatal(err)
		}
		helm, err := helmsim.Run(helmsim.Config{Model: helmsim.OPT175B(), Memory: mem, Policy: helmsim.HeLMPolicy(), Batch: 1, Compress: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s baseline %7.3fs   HeLM %7.3fs   (%.1f%% better)\n",
			mem, base.TBT.Seconds(), helm.TBT.Seconds(), (1-helm.TBT.Seconds()/base.TBT.Seconds())*100)
	}
	fmt.Println()

	// Continuous sweep: synthetic expanders from 4 to 32 GB/s.
	fmt.Println("bandwidth sweep (synthetic CXL expander as host tier), TBT in seconds:")
	fmt.Printf("  %8s  %10s  %10s  %10s\n", "GB/s", "baseline", "HeLM", "HeLM gain")
	cfg := helmsim.OPT175B()
	qc := quant.Default()
	for _, gbps := range []float64{4, 5.12, 8, 12, 16, 19.91, 24, 28, 32} {
		dev := memdev.NewCXL(fmt.Sprintf("CXL-%.0f", gbps), units.GBps(gbps), units.TiB)
		tbt := func(pol helmsim.Policy) float64 {
			mp, err := placement.PlaceModel(pol, cfg)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sched.Run(sched.Options{
				Model: cfg, Placement: mp,
				Devices: sched.TierDevices{CPU: dev},
				GPU:     gpu.NewA100(), Engine: xfer.New(),
				Batch: 1, PromptLen: 128, GenLen: 21, Compression: &qc,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.TBT.Seconds()
		}
		b := tbt(helmsim.BaselinePolicy(0, 80, 20)) // the paper's published OPT-175B baseline
		h := tbt(helmsim.HeLMPolicy())
		fmt.Printf("  %8.2f  %9.3fs  %9.3fs  %9.1f%%\n", gbps, b, h, (1-h/b)*100)
	}
	fmt.Println()
	fmt.Println("HeLM's advantage holds across the whole CXL performance spectrum; it")
	fmt.Println("shrinks only when the link is fast enough that transfers hide entirely")
	fmt.Println("behind compute (§V-D).")
}
