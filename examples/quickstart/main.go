// Quickstart: serve OPT-30B out-of-core on Optane (NVDRAM) host memory and
// print the paper's three metrics — time to first token, time between
// tokens, and throughput — alongside an all-DRAM reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"helmsim"
)

func main() {
	for _, mem := range []helmsim.MemoryConfig{helmsim.MemDRAM, helmsim.MemNVDRAM, helmsim.MemMemoryMode} {
		res, err := helmsim.Run(helmsim.Config{
			Model:  helmsim.OPT30B(),
			Memory: mem,
			Batch:  32, // the paper's OPT-30B maximum (§IV-B)
		})
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		fmt.Printf("%-11s  TTFT %8.3fs   TBT %8.3fs   %7.2f tok/s   (max batch %d)\n",
			mem, res.TTFT.Seconds(), res.TBT.Seconds(), res.Throughput, res.MaxBatch)
	}

	fmt.Println()
	fmt.Println("Out-of-core OPT-30B streams half its weights from host memory every")
	fmt.Println("token; replacing DRAM with Optane costs ~25-30% latency (§IV-B), and")
	fmt.Println("Memory Mode hides the gap while the weights fit its DRAM cache.")
}
