// Latency tuning with HeLM (§V-B): serve the compressed OPT-175B on Optane
// and compare FlexGen's baseline weight placement against HeLM, which
// equalizes layer i's compute with layer i+1's weight transfer. The example
// prints the per-layer-type overlap that explains the win and the resulting
// TTFT/TBT against an all-DRAM system.
//
//	go run ./examples/latency_helm
package main

import (
	"fmt"
	"log"

	"helmsim"
	"helmsim/internal/model"
	"helmsim/internal/report"
	"helmsim/internal/sched"
	"helmsim/internal/units"
)

func main() {
	type point struct {
		label  string
		mem    helmsim.MemoryConfig
		policy helmsim.Policy
	}
	points := []point{
		{"NVDRAM baseline", helmsim.MemNVDRAM, nil},
		{"NVDRAM HeLM", helmsim.MemNVDRAM, helmsim.HeLMPolicy()},
		{"DRAM HeLM", helmsim.MemDRAM, helmsim.HeLMPolicy()},
	}

	fmt.Println("OPT-175B, 4-bit compressed, batch 1 — decode overlap per layer type")
	fmt.Println()
	results := map[string]*helmsim.Result{}
	var maxMs float64
	type bars struct{ mhaC, ffnL, ffnC, mhaL float64 }
	rows := map[string]bars{}
	for _, p := range points {
		res, err := helmsim.Run(helmsim.Config{
			Model: helmsim.OPT175B(), Memory: p.mem, Policy: p.policy, Batch: 1, Compress: true,
		})
		if err != nil {
			log.Fatalf("latency_helm: %v", err)
		}
		results[p.label] = res
		d := res.Decode[len(res.Decode)-1]
		compute := func(lt sched.LayerTiming) units.Duration { return lt.Compute }
		load := func(lt sched.LayerTiming) units.Duration { return lt.Load }
		b := bars{
			mhaC: d.AvgByType(model.LayerMHA, compute).Milliseconds(),
			ffnL: d.AvgByType(model.LayerFFN, load).Milliseconds(),
			ffnC: d.AvgByType(model.LayerFFN, compute).Milliseconds(),
			mhaL: d.AvgByType(model.LayerMHA, load).Milliseconds(),
		}
		rows[p.label] = b
		for _, v := range []float64{b.mhaC, b.ffnL, b.ffnC, b.mhaL} {
			if v > maxMs {
				maxMs = v
			}
		}
	}

	for _, p := range points {
		b := rows[p.label]
		fmt.Printf("%s:\n", p.label)
		fmt.Println(report.Bar("  MHA compute", b.mhaC, maxMs, 36, fmt.Sprintf("%.1f ms", b.mhaC)))
		fmt.Println(report.Bar("  FFN load", b.ffnL, maxMs, 36, fmt.Sprintf("%.1f ms (overlapped pair)", b.ffnL)))
		fmt.Println(report.Bar("  FFN compute", b.ffnC, maxMs, 36, fmt.Sprintf("%.1f ms", b.ffnC)))
		fmt.Println(report.Bar("  MHA load", b.mhaL, maxMs, 36, fmt.Sprintf("%.1f ms (overlapped pair)", b.mhaL)))
		fmt.Println()
	}

	base := results["NVDRAM baseline"]
	helm := results["NVDRAM HeLM"]
	dram := results["DRAM HeLM"]
	fmt.Printf("TTFT: baseline %.3fs -> HeLM %.3fs (%.1f%% better; DRAM %.3fs)\n",
		base.TTFT.Seconds(), helm.TTFT.Seconds(),
		(1-helm.TTFT.Seconds()/base.TTFT.Seconds())*100, dram.TTFT.Seconds())
	fmt.Printf("TBT:  baseline %.3fs -> HeLM %.3fs (%.1f%% better; DRAM %.3fs)\n",
		base.TBT.Seconds(), helm.TBT.Seconds(),
		(1-helm.TBT.Seconds()/base.TBT.Seconds())*100, dram.TBT.Seconds())
	fmt.Println()
	fmt.Println("HeLM halves the FFN transfer (fc1 moves on-GPU) and lets the larger FFN")
	fmt.Println("compute hide the grown MHA transfer — Optane lands within ~9% of DRAM.")
}
