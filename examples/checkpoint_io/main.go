// Checkpoint I/O: build a small synthetic model checkpoint, store it raw
// (FP16) and 4-bit quantized, and stream it back — demonstrating the
// on-disk artifact an out-of-core server loads layers from and the ~3.6x
// size reduction compression buys (§IV-B) with its measured reconstruction
// error.
//
//	go run ./examples/checkpoint_io
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"

	"helmsim/internal/checkpoint"
	"helmsim/internal/model"
	"helmsim/internal/quant"
)

func main() {
	// A scaled-down OPT-style model so the demo runs in milliseconds.
	cfg := model.Config{
		Name: "OPT-mini", Hidden: 256, Heads: 8, Blocks: 2,
		Vocab: 1024, MaxSeq: 512, DTypeBytes: 2,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// Count tensors and synthesize weights per spec.
	var specs []model.WeightSpec
	for _, l := range cfg.Layers() {
		specs = append(specs, l.Weights...)
	}
	weights := make(map[string][]float32, len(specs))
	names := make([]string, 0, len(specs))
	for i, s := range specs {
		key := fmt.Sprintf("%03d/%s", i, s.Name)
		names = append(names, key)
		data := make([]float32, s.Elems)
		for j := range data {
			data[j] = float32(rng.NormFloat64() * 0.02)
		}
		weights[key] = data
	}

	write := func(quantize bool) *bytes.Buffer {
		var buf bytes.Buffer
		w, err := checkpoint.NewWriter(&buf, cfg.Name, len(names))
		if err != nil {
			log.Fatal(err)
		}
		for _, key := range names {
			if quantize {
				qt, err := quant.Quantize(weights[key], quant.Default())
				if err != nil {
					log.Fatal(err)
				}
				if err := w.WriteQuantized(key, qt); err != nil {
					log.Fatal(err)
				}
				continue
			}
			if err := w.WriteRaw(key, weights[key]); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		return &buf
	}

	rawBuf := write(false)
	qBuf := write(true)
	fmt.Printf("%s checkpoint: %d tensors, %d params\n", cfg.Name, len(names), cfg.ParamCount())
	fmt.Printf("  raw FP16:       %8d bytes\n", rawBuf.Len())
	fmt.Printf("  4-bit GWQ:      %8d bytes (%.2fx smaller)\n",
		qBuf.Len(), float64(rawBuf.Len())/float64(qBuf.Len()))

	// Stream the quantized checkpoint back and measure reconstruction
	// error against the originals.
	r, err := checkpoint.NewReader(bytes.NewReader(qBuf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	var se, ss float64
	tensors := 0
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		orig := weights[e.Name]
		for i := range orig {
			d := float64(e.Data[i] - orig[i])
			se += d * d
			ss += float64(orig[i]) * float64(orig[i])
		}
		tensors++
	}
	fmt.Printf("  streamed back:  %d tensors, relative RMS error %.3f%%\n",
		tensors, math.Sqrt(se/ss)*100)
	fmt.Println()
	fmt.Println("Group-wise 4-bit quantization keeps the reconstruction error in the")
	fmt.Println("single-digit percent range — \"a negligible loss in accuracy\" for the")
	fmt.Println("networks (§IV-B) — while quartering every transfer the server makes.")
}
